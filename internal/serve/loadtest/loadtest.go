// Package loadtest drives cmd/mbrserved's HTTP API with concurrent
// deterministic edit streams and checks the service-level guarantees:
//
//   - Determinism: each stream's sequence of measurement bytes (the
//     canonical metric serialization) must equal a single-threaded local
//     flow.Session replay of the same op sequence — the server under
//     concurrent multi-tenant load serves exactly the bytes the library
//     produces in isolation.
//   - Zero steady-state rebuilds: after one warmup measurement, the
//     parametric edit stream (skews with an occasional move or resize)
//     must stay on every retained engine's delta path — the per-response
//     engine summaries' rebuild counters must not advance.
//   - Liveness under readers: concurrent info/snapshot readers share each
//     session's read lock and must all succeed while writers stream.
//
// Streams are generated from a seeded PRNG over the profile's register
// landscape (regenerated locally — profile generation is deterministic),
// so the same Options always replay the same traffic.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// Options configures a load run.
type Options struct {
	// BaseURL targets a running server; empty starts an in-process one.
	BaseURL string `json:"baseURL,omitempty"`
	// Profile and Scale pick the benchmark design every session loads.
	Profile string `json:"profile"`
	Scale   int    `json:"scale"`
	// Sessions is the number of concurrent tenant streams.
	Sessions int `json:"sessions"`
	// Batches per session; BatchEdits edits per batch.
	Batches    int `json:"batches"`
	BatchEdits int `json:"batchEdits"`
	// MeasureEvery inserts a measurement after every n-th batch.
	MeasureEvery int `json:"measureEvery"`
	// Readers is the number of concurrent info/snapshot reader goroutines.
	Readers int `json:"readers"`
	// Workers is the per-session engine worker-pool bound.
	Workers int `json:"workers,omitempty"`
	// Seed roots the per-stream PRNGs.
	Seed int64 `json:"seed"`
	// PoolSize is how many registers each stream edits (its ECO
	// neighborhood). Streams with small pools keep the changed-slack
	// fraction under the compatibility-graph engine's delta threshold;
	// spraying edits across the whole design would legitimately overflow
	// to a rebuild. 0 = 10.
	PoolSize int `json:"poolSize,omitempty"`
	// ComposeAtEnd runs one composition pass plus a final measurement per
	// session after the steady-state window closes.
	ComposeAtEnd bool `json:"composeAtEnd"`
	// OracleSessions bounds how many streams get the (expensive) local
	// single-threaded replay oracle; 0 = all of them.
	OracleSessions int `json:"oracleSessions,omitempty"`
}

// DefaultOptions sizes a run that finishes in CI seconds yet still streams
// thousands of edits across concurrent sessions.
func DefaultOptions() Options {
	return Options{
		Profile:      "D1",
		Scale:        40,
		Sessions:     4,
		Batches:      60,
		BatchEdits:   10,
		MeasureEvery: 1,
		Readers:      3,
		Seed:         1,
		ComposeAtEnd: true,
	}
}

// recenterThresholdDBU is the clock-tree re-center hysteresis every
// harness session (and its local oracle replay) runs with. Without it a
// single register move re-plans the domain tree and moves every buffer a
// few DBU, shifting clock arrivals — and hence slacks — across the whole
// domain: the compatibility-graph delta legitimately overflows to a
// rebuild and the zero-rebuild guarantee is unachievable. Holding
// membership-stable buffers put confines the ripple to the touched
// clusters. 4000 DBU (~4µm) absorbs the drift a small edit pool produces
// while still re-centering after genuine spatial shifts.
const recenterThresholdDBU = 4000

// compatMaxDeltaFrac raises the compatibility-graph delta threshold from
// its batch-flow default of 0.25: a measure absorbing a double leaf
// recluster legitimately carries ~25% changed nodes, right at the default
// cliff. Interactive sessions prefer the delta path's latency consistency
// over the cost heuristic's cliff edge.
const compatMaxDeltaFrac = 0.5

// sessionConfig is the one config every harness session is created with;
// replayLocal mirrors it so the oracle replays identical engine behavior.
func sessionConfig(o Options) serve.SessionConfig {
	return serve.SessionConfig{
		Workers:              o.Workers,
		RecenterThresholdDBU: recenterThresholdDBU,
		CompatMaxDeltaFrac:   compatMaxDeltaFrac,
	}
}

// Result is the run's outcome and counters.
type Result struct {
	Sessions     int     `json:"sessions"`
	Edits        int64   `json:"edits"`
	Measures     int64   `json:"measures"`
	Composes     int64   `json:"composes"`
	ReaderHits   int64   `json:"readerHits"`
	ElapsedMS    float64 `json:"elapsedMS"`
	EditsPerSec  float64 `json:"editsPerSec"`
	MeasureP50MS float64 `json:"measureP50MS"`
	MeasureP99MS float64 `json:"measureP99MS"`
	// SteadyRebuilds counts retained-engine rebuild-counter increments
	// observed inside the steady-state window. The service guarantee is 0.
	SteadyRebuilds int64 `json:"steadyRebuilds"`
	// OracleStreams is how many streams were replayed locally; every one
	// matched byte-for-byte (a mismatch fails the run).
	OracleStreams int                `json:"oracleStreams"`
	Stats         serve.ManagerStats `json:"stats"`
}

// stream is one session's deterministic op sequence: edit batches with
// measurement points, generated up front so the HTTP run and the local
// oracle replay the same ops.
type stream struct {
	name    string
	batches [][]flow.Edit
	measure []bool // measure[i]: measure after batch i
}

// reg is one movable register of the reference design.
type reg struct {
	name     string
	pos      [2]int64
	cells    []string // same class+width drive alternates, current first
	skewable bool
}

// Run executes the load test. Any guarantee violation is returned as an
// error; the Result carries the counters either way when the run got far
// enough to have any.
func Run(o Options) (*Result, error) {
	if o.Sessions <= 0 || o.Batches <= 0 || o.BatchEdits <= 0 {
		return nil, fmt.Errorf("loadtest: Sessions, Batches, BatchEdits must be > 0")
	}
	if o.MeasureEvery <= 0 {
		o.MeasureEvery = 1
	}

	base := o.BaseURL
	if base == "" {
		mgr := serve.NewManager(serve.Options{MaxSessions: o.Sessions + 1})
		ts := httptest.NewServer(serve.Handler(mgr))
		defer ts.Close()
		base = ts.URL
	}
	c := &client{base: base, hc: &http.Client{Timeout: 120 * time.Second}}

	regs, err := referenceRegs(o.Profile, o.Scale)
	if err != nil {
		return nil, err
	}
	streams := make([]*stream, o.Sessions)
	for i := range streams {
		streams[i] = genStream(fmt.Sprintf("s%02d", i), regs, o, int64(i))
	}

	res := &Result{Sessions: o.Sessions}
	t0 := time.Now()

	// Writers: one goroutine per session streams its batches and checks
	// the zero-rebuild guarantee from the per-response engine summaries.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64
		canon     = make([][]string, o.Sessions)
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	done := make(chan struct{})
	for i, st := range streams {
		wg.Add(1)
		go func(idx int, st *stream) {
			defer wg.Done()
			lats, cs, rebuilds, err := c.runStream(st, o)
			mu.Lock()
			latencies = append(latencies, lats...)
			canon[idx] = cs
			res.SteadyRebuilds += rebuilds
			mu.Unlock()
			if err != nil {
				fail(fmt.Errorf("loadtest: stream %s: %w", st.name, err))
			}
		}(i, st)
	}

	// Readers: hammer info/snapshot on random sessions until writers stop.
	var readerWG sync.WaitGroup
	for r := 0; r < o.Readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(o.Seed ^ int64(0x5eed<<8) ^ int64(r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				name := streams[rng.Intn(len(streams))].name
				hits, err := c.read(name)
				mu.Lock()
				res.ReaderHits += hits
				mu.Unlock()
				if err != nil {
					fail(fmt.Errorf("loadtest: reader: %w", err))
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(done)
	readerWG.Wait()
	res.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000

	if firstErr != nil {
		return res, firstErr
	}
	if res.SteadyRebuilds != 0 {
		return res, fmt.Errorf("loadtest: %d retained-engine rebuilds in the steady-state window (want 0)",
			res.SteadyRebuilds)
	}

	// Determinism oracle: replay each stream on a fresh single-threaded
	// local session and require byte-identical measurement sequences.
	oracle := o.OracleSessions
	if oracle <= 0 || oracle > len(streams) {
		oracle = len(streams)
	}
	for i := 0; i < oracle; i++ {
		want, err := replayLocal(streams[i], o)
		if err != nil {
			return res, fmt.Errorf("loadtest: oracle replay %s: %w", streams[i].name, err)
		}
		if len(want) != len(canon[i]) {
			return res, fmt.Errorf("loadtest: oracle %s: %d measures, server saw %d",
				streams[i].name, len(want), len(canon[i]))
		}
		for j := range want {
			if want[j] != canon[i][j] {
				return res, fmt.Errorf("loadtest: determinism violation: stream %s measure %d differs from local replay:\nserver:\n%slocal:\n%s",
					streams[i].name, j, canon[i][j], want[j])
			}
		}
	}
	res.OracleStreams = oracle

	// Counters and latency percentiles.
	stats, err := c.stats()
	if err != nil {
		return res, err
	}
	res.Stats = *stats
	res.Edits = stats.Edits
	res.Measures = stats.Measures
	res.Composes = stats.Composes
	if res.ElapsedMS > 0 {
		res.EditsPerSec = float64(res.Edits) / (res.ElapsedMS / 1000)
	}
	sort.Float64s(latencies)
	res.MeasureP50MS = percentile(latencies, 0.50)
	res.MeasureP99MS = percentile(latencies, 0.99)
	return res, nil
}

// referenceRegs regenerates the profile locally and harvests its movable
// registers: the landscape both the stream generator and the server's
// sessions see, since profile generation is deterministic.
func referenceRegs(profile string, scale int) ([]reg, error) {
	spec, ok := bench.ProfileByName(profile, bench.ProfileOpts{Scale: scale})
	if !ok {
		return nil, fmt.Errorf("loadtest: unknown profile %q", profile)
	}
	bres, err := bench.Generate(spec)
	if err != nil {
		return nil, err
	}
	d := bres.Design
	var regs []reg
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || in.Fixed || in.RegCell == nil {
			return
		}
		r := reg{name: in.Name, pos: [2]int64{in.Pos.X, in.Pos.Y}, skewable: true}
		for _, c := range d.Lib.CellsOfWidth(in.RegCell.Class, in.RegCell.Bits) {
			if c.Name == in.RegCell.Name {
				r.cells = append([]string{c.Name}, r.cells...)
			} else {
				r.cells = append(r.cells, c.Name)
			}
		}
		regs = append(regs, r)
	})
	// Morton order: a contiguous window is a spatial neighborhood, so a
	// stream's edits land on few clock-tree leaves. A move or resize
	// changes its leaf buffer's load and with it every sibling sink's
	// clock arrival; spatially scattered pools would dirty enough of the
	// compatibility graph to legitimately force rebuilds.
	sort.Slice(regs, func(i, j int) bool {
		mi, mj := morton(regs[i].pos), morton(regs[j].pos)
		if mi != mj {
			return mi < mj
		}
		return regs[i].name < regs[j].name
	})
	if len(regs) == 0 {
		return nil, fmt.Errorf("loadtest: profile %s has no movable registers", profile)
	}
	return regs, nil
}

// genStream builds one session's deterministic parametric op sequence
// over a contiguous pool of PoolSize registers (offset per stream) —
// the localized neighborhood an interactive ECO session would work. Each
// batch is skew-dominated with at most one move or resize: skews change a
// single register's own slack, while a move/resize also re-loads its
// clock-tree leaf and ripples arrivals across the sibling sinks, so the
// move rate bounds the changed-slack set each measure must absorb on the
// compatibility graph's delta path. Moves jitter a few hundred DBU around
// the register's base position (small against cluster pitch, so leaf
// membership stays stable), resizes walk the same-width drive alternates,
// skews stay inside ±40ps.
func genStream(name string, regs []reg, o Options, idx int64) *stream {
	rng := rand.New(rand.NewSource(o.Seed + 7919*idx))
	pool := o.PoolSize
	if pool <= 0 {
		pool = 10
	}
	if pool > len(regs) {
		pool = len(regs)
	}
	start := int(idx) * pool % len(regs)
	window := make([]reg, 0, pool)
	for i := 0; i < pool; i++ {
		window = append(window, regs[(start+i)%len(regs)])
	}
	regs = window
	st := &stream{name: name}
	for b := 0; b < o.Batches; b++ {
		batch := make([]flow.Edit, 0, o.BatchEdits)
		structural := rng.Intn(o.BatchEdits) // position of the batch's one move/resize
		for e := 0; e < o.BatchEdits; e++ {
			r := regs[rng.Intn(len(regs))]
			switch {
			case e == structural && rng.Intn(2) == 0:
				batch = append(batch, flow.Edit{
					Op: "move", Inst: r.name,
					X: flow.Coord(r.pos[0] + int64(rng.Intn(801)-400)),
					Y: flow.Coord(r.pos[1] + int64(rng.Intn(801)-400)),
				})
			case e == structural && len(r.cells) > 1:
				batch = append(batch, flow.Edit{
					Op: "resize", Inst: r.name,
					Cell: r.cells[rng.Intn(len(r.cells))],
				})
			default:
				batch = append(batch, flow.Edit{
					Op: "skew", Inst: r.name,
					SkewPS: float64(rng.Intn(81) - 40),
				})
			}
		}
		st.batches = append(st.batches, batch)
		st.measure = append(st.measure, (b+1)%o.MeasureEvery == 0 || b == o.Batches-1)
	}
	return st
}

// replayLocal replays a stream's ops on a fresh single-threaded
// flow.Session and returns the measurement canonical bytes in sequence,
// mirroring what the server journals: warmup measure, batches with
// measurement points, optional compose + final measure.
func replayLocal(st *stream, o Options) ([]string, error) {
	src := serve.Source{Profile: o.Profile, Scale: o.Scale}
	d, plan, err := src.Load()
	if err != nil {
		return nil, err
	}
	cfg := flow.DefaultConfig()
	cfg.Workers = 1
	// Mirror sessionConfig: the oracle must run the engines exactly as the
	// server does (hysteresis included) for the bytes to be comparable.
	cfg.CTS.Tree.RecenterThresholdDBU = recenterThresholdDBU
	cfg.Compat.MaxDeltaFrac = compatMaxDeltaFrac
	fs, err := flow.NewSession(d, plan, cfg)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	var out []string
	met, err := fs.Measure() // warmup
	if err != nil {
		return nil, err
	}
	out = append(out, met.Canonical())
	for i, batch := range st.batches {
		if _, err := fs.Apply(batch); err != nil {
			return nil, fmt.Errorf("batch %d: %w", i, err)
		}
		if st.measure[i] {
			met, err := fs.Measure()
			if err != nil {
				return nil, fmt.Errorf("measure after batch %d: %w", i, err)
			}
			out = append(out, met.Canonical())
		}
	}
	if o.ComposeAtEnd {
		if _, err := fs.ComposePass(); err != nil {
			return nil, fmt.Errorf("compose: %w", err)
		}
		met, err := fs.Measure()
		if err != nil {
			return nil, fmt.Errorf("final measure: %w", err)
		}
		out = append(out, met.Canonical())
	}
	return out, nil
}

// client is the minimal JSON API client the harness needs.
type client struct {
	base string
	hc   *http.Client
}

// runStream creates the session, streams its batches and returns the
// measurement latencies, the canonical measurement bytes in sequence, and
// the rebuild-counter increments observed inside the steady-state window.
func (c *client) runStream(st *stream, o Options) (lats []float64, canon []string, rebuilds int64, err error) {
	create := serve.CreateRequest{
		Name:   st.name,
		Source: serve.Source{Profile: o.Profile, Scale: o.Scale},
		Config: sessionConfig(o),
	}
	var created serve.CreateResponse
	if err = c.post("/v1/sessions", create, &created); err != nil {
		return nil, nil, 0, fmt.Errorf("create: %w", err)
	}

	// Warmup measurement: the engines' first looks are full rebuilds by
	// design; the steady-state window opens after this response.
	var mres serve.MeasureResponse
	if err = c.post("/v1/sessions/"+st.name+"/measure", struct{}{}, &mres); err != nil {
		return nil, nil, 0, fmt.Errorf("warmup measure: %w", err)
	}
	canon = append(canon, mres.Canonical)
	baseline := rebuildCount(mres.Engines)

	for i, batch := range st.batches {
		var eres serve.EditsResponse
		if err = c.post("/v1/sessions/"+st.name+"/edits", serve.EditsRequest{Edits: batch}, &eres); err != nil {
			return lats, canon, rebuilds, fmt.Errorf("batch %d: %w", i, err)
		}
		if eres.Error != "" {
			return lats, canon, rebuilds, fmt.Errorf("batch %d: server: %s", i, eres.Error)
		}
		if n := rebuildCount(eres.Engines); n > baseline {
			rebuilds += n - baseline
			baseline = n
		}
		if st.measure[i] {
			t0 := time.Now()
			var m serve.MeasureResponse
			if err = c.post("/v1/sessions/"+st.name+"/measure", struct{}{}, &m); err != nil {
				return lats, canon, rebuilds, fmt.Errorf("measure after batch %d: %w", i, err)
			}
			lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
			canon = append(canon, m.Canonical)
			if n := rebuildCount(m.Engines); n > baseline {
				rebuilds += n - baseline
				baseline = n
			}
		}
	}

	// The steady-state window closes here; composition legitimately pays
	// for structural work (merges), so its rebuilds are not counted.
	if o.ComposeAtEnd {
		var cres serve.ComposeResponse
		if err = c.post("/v1/sessions/"+st.name+"/compose", struct{}{}, &cres); err != nil {
			return lats, canon, rebuilds, fmt.Errorf("compose: %w", err)
		}
		var m serve.MeasureResponse
		if err = c.post("/v1/sessions/"+st.name+"/measure", struct{}{}, &m); err != nil {
			return lats, canon, rebuilds, fmt.Errorf("final measure: %w", err)
		}
		canon = append(canon, m.Canonical)
	}
	return lats, canon, rebuilds, nil
}

// read performs one info + one snapshot request against a session. 404s
// count as zero hits (the session may not exist yet), everything else
// must succeed.
func (c *client) read(name string) (int64, error) {
	var hits int64
	var info serve.InfoResponse
	code, err := c.get("/v1/sessions/"+name, &info)
	if err != nil {
		return hits, err
	}
	if code == http.StatusOK {
		hits++
	} else if code != http.StatusNotFound {
		return hits, fmt.Errorf("info %s: HTTP %d", name, code)
	}
	var snap serve.Snapshot
	code, err = c.get("/v1/sessions/"+name+"/snapshot", &snap)
	if err != nil {
		return hits, err
	}
	if code == http.StatusOK {
		hits++
	} else if code != http.StatusNotFound {
		return hits, fmt.Errorf("snapshot %s: HTTP %d", name, code)
	}
	return hits, nil
}

func (c *client) stats() (*serve.ManagerStats, error) {
	var st serve.ManagerStats
	code, err := c.get("/v1/stats", &st)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", code)
	}
	return &st, nil
}

func (c *client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

func (c *client) get(path string, out any) (int, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// rebuildCount sums the rebuild counters across a response's retained
// engines; a constant sum across a window means every op in it was served
// on a delta path.
func rebuildCount(engs wire.EngineSummaries) int64 {
	var n int64
	for _, s := range engs {
		n += int64(s.Rebuilds)
	}
	return n
}

// morton interleaves the position's coarse (row/column-granular) bits so
// sorting by it walks the core in a locality-preserving curve.
func morton(pos [2]int64) uint64 {
	x := uint64(pos[0]) >> 10 // ~1µm granularity: same-neighborhood ties
	y := uint64(pos[1]) >> 10
	var m uint64
	for b := 0; b < 32; b++ {
		m |= (x>>b&1)<<(2*b) | (y>>b&1)<<(2*b+1)
	}
	return m
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
