// Package loadtest drives cmd/mbrserved's HTTP API with concurrent
// deterministic edit streams and checks the service-level guarantees:
//
//   - Determinism: each stream's sequence of measurement bytes (the
//     canonical metric serialization) must equal a single-threaded local
//     flow.Session replay of the same op sequence — the server under
//     concurrent multi-tenant load serves exactly the bytes the library
//     produces in isolation.
//   - Zero steady-state rebuilds: outside explicit structural windows
//     (merges, splits, compose/decompose rounds — which legitimately pay
//     for a rebuild on the next engine run), every op must stay on every
//     retained engine's delta path — the per-response engine summaries'
//     rebuild counters must not advance.
//   - Liveness under readers: concurrent info/snapshot readers share each
//     session's read lock and must all succeed while writers stream.
//
// Streams are generated from a seeded PRNG over the profile's register
// landscape (regenerated locally — profile generation is deterministic),
// so the same Options always replay the same traffic. The ECO profile
// additionally mirrors its own stream on a scratch local session while
// generating it, so merge/split candidates are probed against the exact
// state the server will be in (failed probes are side-effect free and
// simply dropped from the stream).
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// Options configures a load run.
type Options struct {
	// BaseURL targets a running server; empty starts an in-process one.
	BaseURL string `json:"baseURL,omitempty"`
	// Profile and Scale pick the benchmark design every session loads.
	Profile string `json:"profile"`
	Scale   int    `json:"scale"`
	// Sessions is the number of concurrent tenant streams.
	Sessions int `json:"sessions"`
	// Batches per session; BatchEdits edits per batch.
	Batches    int `json:"batches"`
	BatchEdits int `json:"batchEdits"`
	// MeasureEvery inserts a measurement after every n-th batch.
	MeasureEvery int `json:"measureEvery"`
	// Readers is the number of concurrent info/snapshot reader goroutines.
	Readers int `json:"readers"`
	// Workers is the per-session engine worker-pool bound.
	Workers int `json:"workers,omitempty"`
	// Seed roots the per-stream PRNGs.
	Seed int64 `json:"seed"`
	// PoolSize is how many registers each stream edits (its ECO
	// neighborhood). Streams with small pools keep the changed-slack
	// fraction under the compatibility-graph engine's delta threshold;
	// spraying edits across the whole design would legitimately overflow
	// to a rebuild. 0 = 10.
	PoolSize int `json:"poolSize,omitempty"`
	// ComposeAtEnd runs one composition pass plus a final measurement per
	// session after the steady-state window closes (parametric profile).
	ComposeAtEnd bool `json:"composeAtEnd"`
	// ECO switches stream generation to the ECO-replay profile: parametric
	// batches interleaved with explicit merge and split edits plus server
	// compose and decompose rounds, closed by a compose + restore finale —
	// the full bank/debank loop under multi-tenant load.
	ECO bool `json:"eco,omitempty"`
	// ECOEvery is how many parametric batches separate consecutive ECO
	// structural rounds (merge, split, compose, decompose — cycled in that
	// order). 0 = 4.
	ECOEvery int `json:"ecoEvery,omitempty"`
	// OracleSessions bounds how many streams get the (expensive) local
	// single-threaded replay oracle; 0 = all of them.
	OracleSessions int `json:"oracleSessions,omitempty"`
}

// DefaultOptions sizes a run that finishes in CI seconds yet still streams
// thousands of edits across concurrent sessions.
func DefaultOptions() Options {
	return Options{
		Profile:      "D1",
		Scale:        40,
		Sessions:     4,
		Batches:      60,
		BatchEdits:   10,
		MeasureEvery: 1,
		Readers:      3,
		Seed:         1,
		ComposeAtEnd: true,
	}
}

// DefaultECOOptions sizes the ECO-replay profile: fewer, shorter streams
// (each op sequence is heavier — compose and decompose rounds run the full
// engine stack) with every structural round kind exercised at least once
// per stream.
func DefaultECOOptions() Options {
	return Options{
		Profile:      "D1",
		Scale:        40,
		Sessions:     2,
		Batches:      16,
		BatchEdits:   8,
		MeasureEvery: 1,
		Readers:      2,
		Seed:         1,
		PoolSize:     16,
		ECO:          true,
		ECOEvery:     4,
	}
}

// recenterThresholdDBU is the clock-tree re-center hysteresis every
// harness session (and its local oracle replay) runs with. Without it a
// single register move re-plans the domain tree and moves every buffer a
// few DBU, shifting clock arrivals — and hence slacks — across the whole
// domain: the compatibility-graph delta legitimately overflows to a
// rebuild and the zero-rebuild guarantee is unachievable. Holding
// membership-stable buffers put confines the ripple to the touched
// clusters. 4000 DBU (~4µm) absorbs the drift a small edit pool produces
// while still re-centering after genuine spatial shifts.
const recenterThresholdDBU = 4000

// compatMaxDeltaFrac raises the compatibility-graph delta threshold from
// its batch-flow default of 0.25: a measure absorbing a double leaf
// recluster legitimately carries ~25% changed nodes, right at the default
// cliff. Interactive sessions prefer the delta path's latency consistency
// over the cost heuristic's cliff edge.
const compatMaxDeltaFrac = 0.5

// ecoDecomposeConfig is the decompose round every ECO stream issues: a
// small budget of the worst-slack MBRs, with a threshold that admits any
// constrained register (only unconstrained +Inf cones are exempt).
func ecoDecomposeConfig() flow.DecomposeConfig {
	return flow.DecomposeConfig{Budget: 4, SlackThresholdPS: 1e9}
}

// sessionConfig is the one config every harness session is created with;
// the oracle replay mirrors it so both run identical engine behavior.
func sessionConfig(o Options) serve.SessionConfig {
	return serve.SessionConfig{
		Workers:              o.Workers,
		RecenterThresholdDBU: recenterThresholdDBU,
		CompatMaxDeltaFrac:   compatMaxDeltaFrac,
	}
}

// Result is the run's outcome and counters.
type Result struct {
	Sessions     int     `json:"sessions"`
	Edits        int64   `json:"edits"`
	Measures     int64   `json:"measures"`
	Composes     int64   `json:"composes"`
	Decomposes   int64   `json:"decomposes"`
	ReaderHits   int64   `json:"readerHits"`
	ElapsedMS    float64 `json:"elapsedMS"`
	EditsPerSec  float64 `json:"editsPerSec"`
	MeasureP50MS float64 `json:"measureP50MS"`
	MeasureP99MS float64 `json:"measureP99MS"`
	// SteadyRebuilds counts retained-engine rebuild-counter increments
	// observed outside structural windows. The service guarantee is 0.
	SteadyRebuilds int64 `json:"steadyRebuilds"`
	// MergeOps/SplitOps count the explicit merge and split edits the ECO
	// streams carried (zero in the parametric profile).
	MergeOps int `json:"mergeOps,omitempty"`
	SplitOps int `json:"splitOps,omitempty"`
	// OracleStreams is how many streams were replayed locally; every one
	// matched byte-for-byte (a mismatch fails the run).
	OracleStreams int                `json:"oracleStreams"`
	Stats         serve.ManagerStats `json:"stats"`
}

// Stream op kinds: the session-level operations a stream sequences.
const (
	opEdits     = "edits"
	opMeasure   = "measure"
	opCompose   = "compose"
	opDecompose = "decompose"
	opRestore   = "restore"
)

// streamOp is one op of a session's deterministic sequence. Structural
// ops (merge/split edit batches, compose, decompose, restore) open an
// exclusion window in the rebuild accounting: the retained engines
// legitimately pay one rebuild on their next run, so counter increments
// re-baseline instead of counting until the next measure closes the
// window.
type streamOp struct {
	kind       string
	edits      []flow.Edit
	decompose  flow.DecomposeConfig
	structural bool
}

// stream is one session's deterministic op sequence, generated up front so
// the HTTP run and the local oracle replay the same ops.
type stream struct {
	name   string
	ops    []streamOp
	merges int
	splits int
}

// reg is one movable register of the reference design.
type reg struct {
	name     string
	pos      [2]int64
	cells    []string // same class+width drive alternates, current first
	skewable bool
}

// Run executes the load test. Any guarantee violation is returned as an
// error; the Result carries the counters either way when the run got far
// enough to have any.
func Run(o Options) (*Result, error) {
	if o.Sessions <= 0 || o.Batches <= 0 || o.BatchEdits <= 0 {
		return nil, fmt.Errorf("loadtest: Sessions, Batches, BatchEdits must be > 0")
	}
	if o.MeasureEvery <= 0 {
		o.MeasureEvery = 1
	}

	base := o.BaseURL
	if base == "" {
		mgr := serve.NewManager(serve.Options{MaxSessions: o.Sessions + 1})
		ts := httptest.NewServer(serve.Handler(mgr))
		defer ts.Close()
		base = ts.URL
	}
	c := &client{base: base, hc: &http.Client{Timeout: 120 * time.Second}}

	streams := make([]*stream, o.Sessions)
	if o.ECO {
		for i := range streams {
			st, err := genStreamECO(fmt.Sprintf("s%02d", i), o, int64(i))
			if err != nil {
				return nil, fmt.Errorf("loadtest: generate ECO stream %d: %w", i, err)
			}
			streams[i] = st
		}
	} else {
		regs, err := referenceRegs(o.Profile, o.Scale)
		if err != nil {
			return nil, err
		}
		for i := range streams {
			streams[i] = genStream(fmt.Sprintf("s%02d", i), regs, o, int64(i))
		}
	}

	res := &Result{Sessions: o.Sessions}
	for _, st := range streams {
		res.MergeOps += st.merges
		res.SplitOps += st.splits
	}
	t0 := time.Now()

	// Writers: one goroutine per session streams its ops and checks the
	// zero-rebuild guarantee from the per-response engine summaries.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []float64
		canon     = make([][]string, o.Sessions)
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	done := make(chan struct{})
	for i, st := range streams {
		wg.Add(1)
		go func(idx int, st *stream) {
			defer wg.Done()
			lats, cs, rebuilds, err := c.runStream(st, o)
			mu.Lock()
			latencies = append(latencies, lats...)
			canon[idx] = cs
			res.SteadyRebuilds += rebuilds
			mu.Unlock()
			if err != nil {
				fail(fmt.Errorf("loadtest: stream %s: %w", st.name, err))
			}
		}(i, st)
	}

	// Readers: hammer info/snapshot on random sessions until writers stop.
	var readerWG sync.WaitGroup
	for r := 0; r < o.Readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(o.Seed ^ int64(0x5eed<<8) ^ int64(r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				name := streams[rng.Intn(len(streams))].name
				hits, err := c.read(name)
				mu.Lock()
				res.ReaderHits += hits
				mu.Unlock()
				if err != nil {
					fail(fmt.Errorf("loadtest: reader: %w", err))
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(done)
	readerWG.Wait()
	res.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000

	if firstErr != nil {
		return res, firstErr
	}
	if res.SteadyRebuilds != 0 {
		return res, fmt.Errorf("loadtest: %d retained-engine rebuilds in the steady-state window (want 0)",
			res.SteadyRebuilds)
	}

	// Determinism oracle: replay each stream on a fresh single-threaded
	// local session and require byte-identical measurement sequences.
	oracle := o.OracleSessions
	if oracle <= 0 || oracle > len(streams) {
		oracle = len(streams)
	}
	for i := 0; i < oracle; i++ {
		want, err := replayLocal(streams[i], o)
		if err != nil {
			return res, fmt.Errorf("loadtest: oracle replay %s: %w", streams[i].name, err)
		}
		if len(want) != len(canon[i]) {
			return res, fmt.Errorf("loadtest: oracle %s: %d measures, server saw %d",
				streams[i].name, len(want), len(canon[i]))
		}
		for j := range want {
			if want[j] != canon[i][j] {
				return res, fmt.Errorf("loadtest: determinism violation: stream %s measure %d differs from local replay:\nserver:\n%slocal:\n%s",
					streams[i].name, j, canon[i][j], want[j])
			}
		}
	}
	res.OracleStreams = oracle

	// Counters and latency percentiles.
	stats, err := c.stats()
	if err != nil {
		return res, err
	}
	res.Stats = *stats
	res.Edits = stats.Edits
	res.Measures = stats.Measures
	res.Composes = stats.Composes
	res.Decomposes = stats.Decomposes
	if res.ElapsedMS > 0 {
		res.EditsPerSec = float64(res.Edits) / (res.ElapsedMS / 1000)
	}
	sort.Float64s(latencies)
	res.MeasureP50MS = percentile(latencies, 0.50)
	res.MeasureP99MS = percentile(latencies, 0.99)
	return res, nil
}

// referenceRegs regenerates the profile locally and harvests its movable
// registers: the landscape both the stream generator and the server's
// sessions see, since profile generation is deterministic.
func referenceRegs(profile string, scale int) ([]reg, error) {
	spec, ok := bench.ProfileByName(profile, bench.ProfileOpts{Scale: scale})
	if !ok {
		return nil, fmt.Errorf("loadtest: unknown profile %q", profile)
	}
	bres, err := bench.Generate(spec)
	if err != nil {
		return nil, err
	}
	d := bres.Design
	var regs []reg
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || in.Fixed || in.RegCell == nil {
			return
		}
		r := reg{name: in.Name, pos: [2]int64{in.Pos.X, in.Pos.Y}, skewable: true}
		for _, c := range d.Lib.CellsOfWidth(in.RegCell.Class, in.RegCell.Bits) {
			if c.Name == in.RegCell.Name {
				r.cells = append([]string{c.Name}, r.cells...)
			} else {
				r.cells = append(r.cells, c.Name)
			}
		}
		regs = append(regs, r)
	})
	// Morton order: a contiguous window is a spatial neighborhood, so a
	// stream's edits land on few clock-tree leaves. A move or resize
	// changes its leaf buffer's load and with it every sibling sink's
	// clock arrival; spatially scattered pools would dirty enough of the
	// compatibility graph to legitimately force rebuilds.
	sort.Slice(regs, func(i, j int) bool {
		mi, mj := morton(regs[i].pos), morton(regs[j].pos)
		if mi != mj {
			return mi < mj
		}
		return regs[i].name < regs[j].name
	})
	if len(regs) == 0 {
		return nil, fmt.Errorf("loadtest: profile %s has no movable registers", profile)
	}
	return regs, nil
}

// genStream builds one session's deterministic parametric op sequence
// over a contiguous pool of PoolSize registers (offset per stream) —
// the localized neighborhood an interactive ECO session would work. Each
// batch is skew-dominated with at most one move or resize: skews change a
// single register's own slack, while a move/resize also re-loads its
// clock-tree leaf and ripples arrivals across the sibling sinks, so the
// move rate bounds the changed-slack set each measure must absorb on the
// compatibility graph's delta path. Moves jitter a few hundred DBU around
// the register's base position (small against cluster pitch, so leaf
// membership stays stable), resizes walk the same-width drive alternates,
// skews stay inside ±40ps.
func genStream(name string, regs []reg, o Options, idx int64) *stream {
	rng := rand.New(rand.NewSource(o.Seed + 7919*idx))
	pool := o.PoolSize
	if pool <= 0 {
		pool = 10
	}
	if pool > len(regs) {
		pool = len(regs)
	}
	start := int(idx) * pool % len(regs)
	window := make([]reg, 0, pool)
	for i := 0; i < pool; i++ {
		window = append(window, regs[(start+i)%len(regs)])
	}
	regs = window
	st := &stream{name: name}
	for b := 0; b < o.Batches; b++ {
		batch := make([]flow.Edit, 0, o.BatchEdits)
		structural := rng.Intn(o.BatchEdits) // position of the batch's one move/resize
		for e := 0; e < o.BatchEdits; e++ {
			r := regs[rng.Intn(len(regs))]
			switch {
			case e == structural && rng.Intn(2) == 0:
				batch = append(batch, flow.MoveTo(r.name,
					r.pos[0]+int64(rng.Intn(801)-400),
					r.pos[1]+int64(rng.Intn(801)-400)))
			case e == structural && len(r.cells) > 1:
				batch = append(batch, flow.Resize(r.name, r.cells[rng.Intn(len(r.cells))]))
			default:
				batch = append(batch, flow.Skew(r.name, float64(rng.Intn(81)-40)))
			}
		}
		st.ops = append(st.ops, streamOp{kind: opEdits, edits: batch})
		if (b+1)%o.MeasureEvery == 0 || b == o.Batches-1 {
			st.ops = append(st.ops, streamOp{kind: opMeasure})
		}
	}
	if o.ComposeAtEnd {
		// Composition legitimately pays for structural work (merges); its
		// window is excluded from the zero-rebuild accounting.
		st.ops = append(st.ops,
			streamOp{kind: opCompose, structural: true},
			streamOp{kind: opMeasure})
	}
	return st
}

// genStreamECO builds one session's bank/debank ECO stream: parametric
// batches interleaved with explicit merge and split edits plus server-side
// compose and decompose rounds, closed by a compose + restore finale. The
// generator mirrors its own stream op-for-op on a scratch local session,
// so merge/split candidates are probed against the exact design state the
// server will be in when the op arrives — a probe the scratch session
// rejects is side-effect free (validate-then-commit) and simply dropped
// from the stream. Every structural round is followed by a measurement,
// both for the determinism oracle and so the rebuild accounting can
// re-baseline and close the exclusion window.
func genStreamECO(name string, o Options, idx int64) (*stream, error) {
	rng := rand.New(rand.NewSource(o.Seed + 7919*idx))
	pool := o.PoolSize
	if pool <= 0 {
		pool = 10
	}
	ecoEvery := o.ECOEvery
	if ecoEvery <= 0 {
		ecoEvery = 4
	}

	fs, err := openLocal(o)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	if _, err := fs.Measure(); err != nil { // mirror the server's warmup
		return nil, err
	}
	d := fs.Design()

	st := &stream{name: name}
	// emit applies the op to the scratch mirror and appends it; generation
	// fails loudly rather than let the stream diverge from the mirror.
	emit := func(op streamOp) error {
		if err := applyOpLocal(fs, op); err != nil {
			return fmt.Errorf("%s op %d (%s): %w", name, len(st.ops), op.kind, err)
		}
		st.ops = append(st.ops, op)
		return nil
	}
	// tryEdit probes one structural edit. A rejected edit leaves the
	// scratch session untouched, so skipping it keeps mirror and stream in
	// lockstep.
	tryEdit := func(e flow.Edit) bool {
		if _, err := fs.Apply([]flow.Edit{e}); err != nil {
			return false
		}
		st.ops = append(st.ops, streamOp{kind: opEdits, edits: []flow.Edit{e}, structural: true})
		return true
	}

	// basePos pins each register's move jitter to the position it had when
	// the stream first touched it: repeated moves re-jitter around the base
	// instead of random-walking across clock-tree leaf boundaries.
	basePos := make(map[string][2]int64)
	mergeSeq := 0
	round := 0

	for b := 0; b < o.Batches; b++ {
		window := liveWindow(d, pool, idx)
		if len(window) == 0 {
			return nil, fmt.Errorf("%s: no live movable registers left", name)
		}
		batch := make([]flow.Edit, 0, o.BatchEdits)
		structural := rng.Intn(o.BatchEdits)
		for e := 0; e < o.BatchEdits; e++ {
			r := window[rng.Intn(len(window))]
			base, ok := basePos[r.Name]
			if !ok {
				base = [2]int64{r.Pos.X, r.Pos.Y}
				basePos[r.Name] = base
			}
			alts := d.Lib.CellsOfWidth(r.RegCell.Class, r.RegCell.Bits)
			switch {
			case e == structural && rng.Intn(2) == 0:
				batch = append(batch, flow.MoveTo(r.Name,
					base[0]+int64(rng.Intn(801)-400),
					base[1]+int64(rng.Intn(801)-400)))
			case e == structural && len(alts) > 1:
				batch = append(batch, flow.Resize(r.Name, alts[rng.Intn(len(alts))].Name))
			default:
				batch = append(batch, flow.Skew(r.Name, float64(rng.Intn(81)-40)))
			}
		}
		if err := emit(streamOp{kind: opEdits, edits: batch}); err != nil {
			return nil, err
		}
		if (b+1)%o.MeasureEvery == 0 || b == o.Batches-1 {
			if err := emit(streamOp{kind: opMeasure}); err != nil {
				return nil, err
			}
		}

		if (b+1)%ecoEvery != 0 {
			continue
		}
		// Structural ECO round: merge, split, compose, decompose — cycled.
		applied := false
		switch round % 4 {
		case 0: // bank: merge an adjacent single-bit pair from the window
			off := rng.Intn(len(window))
			for i := 0; i < len(window)-1 && !applied; i++ {
				a, b2 := window[(off+i)%(len(window)-1)], window[(off+i)%(len(window)-1)+1]
				if a.Bits() != 1 || b2.Bits() != 1 || a.RegCell.Class != b2.RegCell.Class {
					continue
				}
				if tryEdit(flow.MergeGroup(fmt.Sprintf("eco_m%d", mergeSeq), a.Name, b2.Name)) {
					mergeSeq++
					st.merges++
					applied = true
				}
			}
		case 1: // debank: split a live MBR, preferring ones this stream banked
			cands := splitCandidates(d, pool, idx)
			for _, in := range cands {
				if tryEdit(flow.SplitInst(in.Name)) {
					st.splits++
					applied = true
					break
				}
			}
		case 2:
			if err := emit(streamOp{kind: opCompose, structural: true}); err != nil {
				return nil, err
			}
			applied = true
		case 3:
			if err := emit(streamOp{kind: opDecompose, decompose: ecoDecomposeConfig(), structural: true}); err != nil {
				return nil, err
			}
			applied = true
		}
		round++
		if applied {
			if err := emit(streamOp{kind: opMeasure}); err != nil {
				return nil, err
			}
		}
	}

	// Close the loop: recompose whatever the decompose rounds freed, then
	// restore any stranded single bits and take the final measurement.
	finale := []streamOp{
		{kind: opCompose, structural: true},
		{kind: opMeasure},
		{kind: opRestore, structural: true},
		{kind: opMeasure},
	}
	for _, op := range finale {
		if err := emit(op); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// liveWindow harvests the design's current movable registers in Morton
// order and cuts the stream's contiguous window out of them — the same
// spatial-neighborhood rule as the parametric profile, but recomputed
// against live state so merged-away registers drop out and freshly banked
// MBRs (or debanked bits) join the neighborhood.
func liveWindow(d *netlist.Design, pool int, idx int64) []*netlist.Inst {
	var regs []*netlist.Inst
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || in.Fixed || in.SizeOnly || in.RegCell == nil {
			return
		}
		regs = append(regs, in)
	})
	sort.Slice(regs, func(i, j int) bool {
		mi := morton([2]int64{regs[i].Pos.X, regs[i].Pos.Y})
		mj := morton([2]int64{regs[j].Pos.X, regs[j].Pos.Y})
		if mi != mj {
			return mi < mj
		}
		return regs[i].Name < regs[j].Name
	})
	if len(regs) == 0 {
		return nil
	}
	if pool > len(regs) {
		pool = len(regs)
	}
	start := int(idx) * pool % len(regs)
	window := make([]*netlist.Inst, 0, pool)
	for i := 0; i < pool; i++ {
		window = append(window, regs[(start+i)%len(regs)])
	}
	return window
}

// splitCandidates orders the live multi-bit registers a debank round may
// split: the stream's own eco_* MBRs first (guaranteeing split ops appear
// in the stream once a bank round succeeded), then the window's MBRs.
func splitCandidates(d *netlist.Design, pool int, idx int64) []*netlist.Inst {
	var own, other []*netlist.Inst
	for _, in := range liveWindow(d, pool, idx) {
		if in.Bits() < 2 {
			continue
		}
		other = append(other, in)
	}
	d.Insts(func(in *netlist.Inst) {
		if in.Kind != netlist.KindReg || in.Fixed || in.Bits() < 2 {
			return
		}
		if strings.HasPrefix(in.Name, "eco_m") {
			own = append(own, in)
		}
	})
	sort.Slice(own, func(i, j int) bool { return own[i].Name < own[j].Name })
	return append(own, other...)
}

// openLocal opens the single-threaded local flow session both the oracle
// replay and the ECO stream generator use. It must run the engines exactly
// as the server does (hysteresis included) for the bytes to be comparable.
func openLocal(o Options) (*flow.Session, error) {
	src := serve.Source{Profile: o.Profile, Scale: o.Scale}
	d, plan, err := src.Load()
	if err != nil {
		return nil, err
	}
	cfg := flow.DefaultConfig()
	cfg.Workers = 1
	cfg.CTS.Tree.RecenterThresholdDBU = recenterThresholdDBU
	cfg.Compat.MaxDeltaFrac = compatMaxDeltaFrac
	return flow.NewSession(d, plan, cfg)
}

// applyOpLocal applies one stream op to a local session — the shared op
// semantics of the oracle replay and the ECO generator's scratch mirror.
func applyOpLocal(fs *flow.Session, op streamOp) error {
	var err error
	switch op.kind {
	case opEdits:
		_, err = fs.Apply(op.edits)
	case opMeasure:
		_, err = fs.Measure()
	case opCompose:
		_, err = fs.ComposePass()
	case opDecompose:
		_, err = fs.DecomposePassWith(op.decompose)
	case opRestore:
		_, err = fs.RestorePass()
	default:
		err = fmt.Errorf("unknown stream op %q", op.kind)
	}
	return err
}

// replayLocal replays a stream's ops on a fresh single-threaded
// flow.Session and returns the measurement canonical bytes in sequence,
// mirroring what the server journals: warmup measure, then the op stream.
func replayLocal(st *stream, o Options) ([]string, error) {
	fs, err := openLocal(o)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	var out []string
	met, err := fs.Measure() // warmup
	if err != nil {
		return nil, err
	}
	out = append(out, met.Canonical())
	for i, op := range st.ops {
		if op.kind == opMeasure {
			met, err := fs.Measure()
			if err != nil {
				return nil, fmt.Errorf("op %d (measure): %w", i, err)
			}
			out = append(out, met.Canonical())
			continue
		}
		if err := applyOpLocal(fs, op); err != nil {
			return nil, fmt.Errorf("op %d (%s): %w", i, op.kind, err)
		}
	}
	return out, nil
}

// client is the minimal JSON API client the harness needs.
type client struct {
	base string
	hc   *http.Client
}

// runStream creates the session, streams its ops and returns the
// measurement latencies, the canonical measurement bytes in sequence, and
// the rebuild-counter increments observed outside structural exclusion
// windows.
func (c *client) runStream(st *stream, o Options) (lats []float64, canon []string, rebuilds int64, err error) {
	create := serve.CreateRequest{
		Name:   st.name,
		Source: serve.Source{Profile: o.Profile, Scale: o.Scale},
		Config: sessionConfig(o),
	}
	var created serve.CreateResponse
	if err = c.post("/v1/sessions", create, &created); err != nil {
		return nil, nil, 0, fmt.Errorf("create: %w", err)
	}

	// Warmup measurement: the engines' first looks are full rebuilds by
	// design; the steady-state window opens after this response.
	var mres serve.MeasureResponse
	if err = c.post("/v1/sessions/"+st.name+"/measure", struct{}{}, &mres); err != nil {
		return nil, nil, 0, fmt.Errorf("warmup measure: %w", err)
	}
	canon = append(canon, mres.Canonical)
	baseline := rebuildCount(mres.Engines)

	// excluded marks a structural window: a merge/split/compose/decompose/
	// restore legitimately pays one engine rebuild on its next run, so
	// counter increments re-baseline instead of counting until the next
	// measurement closes the window.
	excluded := false
	account := func(engs wire.EngineSummaries) {
		n := rebuildCount(engs)
		if excluded {
			baseline = n
			return
		}
		if n > baseline {
			rebuilds += n - baseline
			baseline = n
		}
	}

	for i, op := range st.ops {
		if op.structural {
			excluded = true
		}
		path := "/v1/sessions/" + st.name
		switch op.kind {
		case opEdits:
			var eres serve.EditsResponse
			if err = c.post(path+"/edits", serve.EditsRequest{Edits: op.edits}, &eres); err != nil {
				return lats, canon, rebuilds, fmt.Errorf("op %d (edits): %w", i, err)
			}
			if eres.Error != nil {
				return lats, canon, rebuilds, fmt.Errorf("op %d (edits): server: %w", i, eres.Error)
			}
			account(eres.Engines)
		case opMeasure:
			t0 := time.Now()
			var m serve.MeasureResponse
			if err = c.post(path+"/measure", struct{}{}, &m); err != nil {
				return lats, canon, rebuilds, fmt.Errorf("op %d (measure): %w", i, err)
			}
			lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
			canon = append(canon, m.Canonical)
			account(m.Engines)
			excluded = false
		case opCompose:
			var cres serve.ComposeResponse
			if err = c.post(path+"/compose", struct{}{}, &cres); err != nil {
				return lats, canon, rebuilds, fmt.Errorf("op %d (compose): %w", i, err)
			}
			account(cres.Engines)
		case opDecompose:
			var dres serve.DecomposeResponse
			req := serve.DecomposeRequest{Decompose: op.decompose}
			if err = c.post(path+"/decompose", req, &dres); err != nil {
				return lats, canon, rebuilds, fmt.Errorf("op %d (decompose): %w", i, err)
			}
			account(dres.Engines)
		case opRestore:
			var rres serve.RestoreResponse
			if err = c.post(path+"/restore", struct{}{}, &rres); err != nil {
				return lats, canon, rebuilds, fmt.Errorf("op %d (restore): %w", i, err)
			}
			account(rres.Engines)
		}
	}
	return lats, canon, rebuilds, nil
}

// read performs one info + one snapshot request against a session. 404s
// count as zero hits (the session may not exist yet), everything else
// must succeed.
func (c *client) read(name string) (int64, error) {
	var hits int64
	var info serve.InfoResponse
	code, err := c.get("/v1/sessions/"+name, &info)
	if err != nil {
		return hits, err
	}
	if code == http.StatusOK {
		hits++
	} else if code != http.StatusNotFound {
		return hits, fmt.Errorf("info %s: HTTP %d", name, code)
	}
	var snap serve.Snapshot
	code, err = c.get("/v1/sessions/"+name+"/snapshot", &snap)
	if err != nil {
		return hits, err
	}
	if code == http.StatusOK {
		hits++
	} else if code != http.StatusNotFound {
		return hits, fmt.Errorf("snapshot %s: HTTP %d", name, code)
	}
	return hits, nil
}

func (c *client) stats() (*serve.ManagerStats, error) {
	var st serve.ManagerStats
	code, err := c.get("/v1/stats", &st)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("stats: HTTP %d", code)
	}
	return &st, nil
}

func (c *client) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		// Error bodies are structured wire.Error envelopes; surface the
		// typed error so callers can branch on its stable code.
		var werr wire.Error
		if json.Unmarshal(data, &werr) == nil && werr.Code != "" {
			return fmt.Errorf("POST %s: HTTP %d: %w", path, resp.StatusCode, &werr)
		}
		return fmt.Errorf("POST %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

func (c *client) get(path string, out any) (int, error) {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// rebuildCount sums the rebuild counters across a response's retained
// engines; a constant sum across a window means every op in it was served
// on a delta path.
func rebuildCount(engs wire.EngineSummaries) int64 {
	var n int64
	for _, s := range engs {
		n += int64(s.Rebuilds)
	}
	return n
}

// morton interleaves the position's coarse (row/column-granular) bits so
// sorting by it walks the core in a locality-preserving curve.
func morton(pos [2]int64) uint64 {
	x := uint64(pos[0]) >> 10 // ~1µm granularity: same-neighborhood ties
	y := uint64(pos[1]) >> 10
	var m uint64
	for b := 0; b < 32; b++ {
		m |= (x>>b&1)<<(2*b) | (y>>b&1)<<(2*b+1)
	}
	return m
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
