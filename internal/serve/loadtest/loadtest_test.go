package loadtest

import "testing"

// TestSmoke runs a scaled-down harness pass in-process: concurrent edit
// streams against the HTTP server, every stream checked byte-for-byte
// against its local replay oracle, with zero steady-state rebuild
// fallbacks across all retained engines.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness smoke is not a -short test")
	}
	o := DefaultOptions()
	o.Sessions = 2
	o.Batches = 12
	o.Readers = 2
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyRebuilds != 0 {
		t.Fatalf("steady-state rebuilds = %d, want 0", res.SteadyRebuilds)
	}
	if res.OracleStreams != o.Sessions {
		t.Fatalf("oracle streams verified = %d, want %d", res.OracleStreams, o.Sessions)
	}
	if want := int64(o.Sessions * o.Batches * o.BatchEdits); res.Edits != want {
		t.Fatalf("edits = %d, want %d", res.Edits, want)
	}
	if res.Measures == 0 || res.Composes != int64(o.Sessions) {
		t.Fatalf("measures=%d composes=%d", res.Measures, res.Composes)
	}
}

// TestECOSmoke runs the ECO-replay stream profile: logic edits interleaved
// with bank (merge), debank (split), compose, and slack-driven decompose
// rounds. The retained engines must stay delta-incremental outside the
// structural windows those rounds open, and every stream must still replay
// byte-identically against its single-threaded oracle.
func TestECOSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ECO harness smoke is not a -short test")
	}
	o := DefaultECOOptions()
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SteadyRebuilds != 0 {
		t.Fatalf("steady-state rebuilds = %d, want 0", res.SteadyRebuilds)
	}
	if res.OracleStreams != o.Sessions {
		t.Fatalf("oracle streams verified = %d, want %d", res.OracleStreams, o.Sessions)
	}
	if res.MergeOps == 0 {
		t.Fatal("ECO stream generated no merge ops")
	}
	if res.SplitOps == 0 {
		t.Fatal("ECO stream generated no split ops")
	}
	if res.Decomposes == 0 {
		t.Fatal("ECO stream ran no decompose passes")
	}
	if res.Composes == 0 {
		t.Fatal("ECO stream ran no compose passes")
	}
}
