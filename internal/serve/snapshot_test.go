package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/flow"
)

// editScript builds a deterministic mixed op sequence for a profile: skews
// on the first movable registers, one move, one resize when the library
// offers an alternate, interleaved with measures.
func editScript(t *testing.T, src Source) [][]flow.Edit {
	t.Helper()
	d, _, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	var movable []struct {
		name string
		x, y int64
		alt  string
	}
	for _, in := range d.Registers() {
		if in.Fixed {
			continue
		}
		alt := ""
		for _, c := range d.Lib.CellsOfWidth(in.RegCell.Class, in.RegCell.Bits) {
			if c.Name != in.RegCell.Name {
				alt = c.Name
				break
			}
		}
		movable = append(movable, struct {
			name string
			x, y int64
			alt  string
		}{in.Name, in.Pos.X, in.Pos.Y, alt})
		if len(movable) == 6 {
			break
		}
	}
	if len(movable) < 6 {
		t.Fatalf("profile %s too small: %d movable regs", src.Profile, len(movable))
	}
	batches := [][]flow.Edit{
		{
			flow.Skew(movable[0].name, 11),
			flow.Skew(movable[1].name, -7),
		},
		{
			flow.MoveTo(movable[2].name, movable[2].x+640, movable[2].y),
			flow.Skew(movable[3].name, 23),
		},
		{
			flow.Skew(movable[4].name, -15),
			flow.Skew(movable[5].name, 4),
		},
	}
	if movable[1].alt != "" {
		batches[2] = append(batches[2], flow.Resize(movable[1].name, movable[1].alt))
	}
	return batches
}

// TestSnapshotByteIdentity drives every benchmark profile through a mixed
// edit/measure/compose sequence at two worker counts, snapshots, restores,
// and requires the restored session's observable state bytes to equal the
// live session's exactly. The restore path itself re-verifies the SHA-256
// digest, so this also exercises the digest check end to end.
func TestSnapshotByteIdentity(t *testing.T) {
	profiles := []Source{
		{Profile: "D1", Scale: 60},
		{Profile: "D2", Scale: 60},
		{Profile: "D3", Scale: 60},
		{Profile: "D4", Scale: 60},
		{Profile: "D5", Scale: 60},
	}
	for _, src := range profiles {
		for _, workers := range []int{1, 4} {
			src, workers := src, workers
			t.Run(fmt.Sprintf("%s/workers=%d", src.Profile, workers), func(t *testing.T) {
				t.Parallel()
				m := NewManager(Options{MaxSessions: 32})
				cfg := SessionConfig{
					Workers:              workers,
					RecenterThresholdDBU: 3000,
					CompatMaxDeltaFrac:   0.5,
				}
				live, err := m.Create("live-"+src.Profile, src, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i, batch := range editScript(t, src) {
					if _, _, err := live.Apply(batch); err != nil {
						t.Fatalf("batch %d: %v", i, err)
					}
					if _, _, err := live.Measure(); err != nil {
						t.Fatalf("measure %d: %v", i, err)
					}
				}
				if _, _, err := live.Compose(); err != nil {
					t.Fatal(err)
				}
				if _, _, err := live.Measure(); err != nil {
					t.Fatal(err)
				}

				snap, err := live.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				// Snapshots must survive a JSON round trip unchanged — that is
				// how they travel over the wire.
				enc, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var decoded Snapshot
				if err := json.Unmarshal(enc, &decoded); err != nil {
					t.Fatal(err)
				}
				restored, err := m.Restore("restored-"+src.Profile, &decoded)
				if err != nil {
					t.Fatal(err)
				}

				liveState, err := live.DumpState()
				if err != nil {
					t.Fatal(err)
				}
				restState, err := restored.DumpState()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(liveState, restState) {
					t.Fatalf("restored state differs from live state (%d vs %d bytes)",
						len(liveState), len(restState))
				}

				// And the next measurement is byte-identical too.
				lm, _, err := live.Measure()
				if err != nil {
					t.Fatal(err)
				}
				rm, _, err := restored.Measure()
				if err != nil {
					t.Fatal(err)
				}
				if lm.Canonical() != rm.Canonical() {
					t.Fatalf("post-restore measure diverged:\nlive:\n%srestored:\n%s",
						lm.Canonical(), rm.Canonical())
				}
			})
		}
	}
}
