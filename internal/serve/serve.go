// Package serve turns the retained-engine composition flow into a
// long-running multi-tenant service: named sessions, each wrapping a
// flow.Session (design + scan plan + six retained incremental engines),
// held in an LRU-bounded registry. Edits stream in per session and
// measurements stream out with O(touched) incremental cost; the op
// journal makes every session snapshotable and deterministically
// restorable (snapshot.go).
//
// Concurrency model: the Manager's registry is guarded by one mutex;
// every Session is single-writer/concurrent-reader behind its own
// RWMutex. Mutating ops (Apply, Measure, Compose) take the write lock —
// a measurement advances retained engine state, so it is a write — and
// read-only ops (Info, Engines, Snapshot) share the read lock. Lock
// order is always Manager → Session; eviction releases the registry
// lock before invalidating the victim so a slow writer never stalls the
// whole registry.
package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrEvicted is returned by session ops that raced an eviction.
var ErrEvicted = errors.New("serve: session evicted")

// DefaultMaxSessions bounds the registry when Options.MaxSessions is 0.
const DefaultMaxSessions = 16

// Options configures a Manager.
type Options struct {
	// MaxSessions bounds the number of live sessions; creating one beyond
	// the cap evicts the least recently used (its engines invalidated).
	// 0 = DefaultMaxSessions.
	MaxSessions int
}

// ManagerStats is the server-level counter snapshot.
type ManagerStats struct {
	Live       int   `json:"live"`
	Created    int64 `json:"created"`
	Restored   int64 `json:"restored"`
	Evicted    int64 `json:"evicted"`
	EvictedLRU int64 `json:"evictedLRU"`
	Batches    int64 `json:"batches"`
	Edits      int64 `json:"edits"`
	Measures   int64 `json:"measures"`
	Composes   int64 `json:"composes"`
	Decomposes int64 `json:"decomposes"`
	Snapshots  int64 `json:"snapshots"`
}

// Manager is the multi-tenant session registry.
type Manager struct {
	max int

	mu       sync.Mutex
	sessions map[string]*Session
	lru      *list.List // of *Session; front = most recently used
	creating map[string]bool

	created, restored, evicted, evictedLRU    atomic.Int64
	batches, edits, measures, composes, snaps atomic.Int64
	decomposes                                atomic.Int64
}

// NewManager returns an empty registry.
func NewManager(opts Options) *Manager {
	max := opts.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &Manager{
		max:      max,
		sessions: map[string]*Session{},
		lru:      list.New(),
		creating: map[string]bool{},
	}
}

// Create loads the source design and opens a named session over it. The
// load and engine attach run outside the registry lock (they are the
// expensive part); the name is reserved for the duration so two
// concurrent creates of the same name cannot both win.
func (m *Manager) Create(name string, src Source, cfg SessionConfig) (*Session, error) {
	build := func() (*Session, error) {
		return newSession(m, name, src, cfg, nil)
	}
	s, err := m.install(name, build)
	if err != nil {
		return nil, err
	}
	m.created.Add(1)
	return s, nil
}

// Restore rebuilds a session from a snapshot: fresh load of the source,
// replay of the journaled ops, and a state-digest check proving the
// replayed state is byte-identical to the snapshotted one. name overrides
// the snapshot's own name when non-empty.
func (m *Manager) Restore(name string, snap *Snapshot) (*Session, error) {
	if snap == nil {
		return nil, fmt.Errorf("serve: nil snapshot")
	}
	if name == "" {
		name = snap.Name
	}
	build := func() (*Session, error) {
		return newSession(m, name, snap.Source, snap.Config, snap)
	}
	s, err := m.install(name, build)
	if err != nil {
		return nil, err
	}
	m.restored.Add(1)
	return s, nil
}

// install reserves the name, runs the builder outside the lock, then
// registers the session and applies the LRU cap.
func (m *Manager) install(name string, build func() (*Session, error)) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty session name")
	}
	m.mu.Lock()
	if m.sessions[name] != nil || m.creating[name] {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: session %q already exists", name)
	}
	m.creating[name] = true
	m.mu.Unlock()

	s, err := build()

	m.mu.Lock()
	delete(m.creating, name)
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.sessions[name] = s
	s.elem = m.lru.PushFront(s)
	var victims []*Session
	for len(m.sessions) > m.max {
		back := m.lru.Back()
		if back == nil || back.Value.(*Session) == s {
			break
		}
		v := back.Value.(*Session)
		m.lru.Remove(back)
		delete(m.sessions, v.name)
		victims = append(victims, v)
	}
	m.mu.Unlock()

	// Invalidate outside the registry lock: the victim may be serving a
	// long request; its own lock serializes the teardown.
	for _, v := range victims {
		m.evictedLRU.Add(1)
		v.invalidate()
	}
	return s, nil
}

// Get returns the named session, marking it most recently used.
func (m *Manager) Get(name string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[name]
	if ok {
		m.lru.MoveToFront(s.elem)
	}
	return s, ok
}

// Evict removes the named session and invalidates its retained engines.
func (m *Manager) Evict(name string) bool {
	m.mu.Lock()
	s, ok := m.sessions[name]
	if ok {
		delete(m.sessions, name)
		m.lru.Remove(s.elem)
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	m.evicted.Add(1)
	s.invalidate()
	return true
}

// Names returns the live session names, most recently used first.
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, m.lru.Len())
	for e := m.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Session).name)
	}
	return out
}

// List returns infos for every live session, most recently used first.
func (m *Manager) List() []SessionInfo {
	m.mu.Lock()
	ss := make([]*Session, 0, m.lru.Len())
	for e := m.lru.Front(); e != nil; e = e.Next() {
		ss = append(ss, e.Value.(*Session))
	}
	m.mu.Unlock()
	out := make([]SessionInfo, 0, len(ss))
	for _, s := range ss {
		out = append(out, s.Info())
	}
	return out
}

// Stats snapshots the server counters.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	live := len(m.sessions)
	m.mu.Unlock()
	return ManagerStats{
		Live:       live,
		Created:    m.created.Load(),
		Restored:   m.restored.Load(),
		Evicted:    m.evicted.Load(),
		EvictedLRU: m.evictedLRU.Load(),
		Batches:    m.batches.Load(),
		Edits:      m.edits.Load(),
		Measures:   m.measures.Load(),
		Composes:   m.composes.Load(),
		Decomposes: m.decomposes.Load(),
		Snapshots:  m.snaps.Load(),
	}
}

// now is a tiny indirection so tests can pin timestamps if ever needed.
var now = time.Now
