package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/flow"
	"repro/internal/serve/wire"
)

// decodeWireError decodes a non-2xx response body into the typed envelope
// and fails the test if the body is not one.
func decodeWireError(t *testing.T, body []byte) *wire.Error {
	t.Helper()
	var we wire.Error
	if err := json.Unmarshal(body, &we); err != nil || we.Code == "" {
		t.Fatalf("error body is not a wire.Error envelope: %s", body)
	}
	return &we
}

// TestHTTPErrorCodes pins the typed error envelope contract: every error
// path emits {code, op, message} JSON with a stable machine-readable code —
// clients branch on codes, never on message text.
func TestHTTPErrorCodes(t *testing.T) {
	m := NewManager(Options{})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	do := func(method, path string, body []byte) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, buf.Bytes()
	}

	// not_found: unknown session, on reads and mutations alike.
	for _, tc := range []struct{ method, path, op string }{
		{http.MethodGet, "/v1/sessions/nope", "info"},
		{http.MethodDelete, "/v1/sessions/nope", "evict"},
		{http.MethodPost, "/v1/sessions/nope/measure", "measure"},
		{http.MethodPost, "/v1/sessions/nope/compose", "compose"},
		{http.MethodPost, "/v1/sessions/nope/decompose", "decompose"},
		{http.MethodPost, "/v1/sessions/nope/restore", "restore"},
		{http.MethodGet, "/v1/sessions/nope/snapshot", "snapshot"},
	} {
		code, body := do(tc.method, tc.path, []byte(`{}`))
		if code != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", tc.method, tc.path, code)
		}
		we := decodeWireError(t, body)
		if we.Code != wire.CodeNotFound || we.Op != tc.op {
			t.Fatalf("%s %s error envelope %+v, want code=%s op=%s",
				tc.method, tc.path, we, wire.CodeNotFound, tc.op)
		}
	}

	// validation: a request the server understands but rejects.
	badCreate, _ := json.Marshal(CreateRequest{Name: "x", Source: Source{Profile: "D9"}})
	code, body := do(http.MethodPost, "/v1/sessions", badCreate)
	if code != http.StatusBadRequest {
		t.Fatalf("bad create = %d, want 400", code)
	}
	if we := decodeWireError(t, body); we.Code != wire.CodeValidation || we.Op != "create" {
		t.Fatalf("bad create envelope %+v", we)
	}

	// validation on the new endpoint: a zero decompose config selects no
	// victims.
	if _, err := m.Create("dz", testSource(), SessionConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	code, body = do(http.MethodPost, "/v1/sessions/dz/decompose", []byte(`{}`))
	if code != http.StatusBadRequest {
		t.Fatalf("zero-config decompose = %d, want 400", code)
	}
	if we := decodeWireError(t, body); we.Code != wire.CodeValidation || we.Op != "decompose" {
		t.Fatalf("zero-config decompose envelope %+v", we)
	}

	// body_too_large: the 64 MiB request-body bound.
	huge := append(bytes.Repeat([]byte(" "), maxRequestBytes+2), []byte(`{}`)...)
	code, body = do(http.MethodPost, "/v1/sessions/dz/decompose", huge)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", code)
	}
	if we := decodeWireError(t, body); we.Code != wire.CodeBodyTooLarge {
		t.Fatalf("oversized body envelope %+v", we)
	}

	// evicted: the session raced an LRU eviction. The HTTP mux resolves
	// names before the session acts, so the envelope mapping is pinned at
	// the writeError layer (a live handle returning ErrEvicted is exactly
	// the race the 410 covers).
	rec := httptest.NewRecorder()
	writeError(rec, "measure", statusFor(ErrEvicted), ErrEvicted)
	if rec.Code != http.StatusGone {
		t.Fatalf("evicted status = %d, want 410", rec.Code)
	}
	if we := decodeWireError(t, rec.Body.Bytes()); we.Code != wire.CodeEvicted || we.Op != "measure" {
		t.Fatalf("evicted envelope %+v", we)
	}
}

// TestHTTPDecomposeRestore drives the new decompose and restore endpoints
// end to end: bank a pair via a merge edit, decompose it by slack, restore
// the stranded bits, and check the counters and journal survive a snapshot
// round trip over HTTP.
func TestHTTPDecomposeRestore(t *testing.T) {
	m := NewManager(Options{})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	post := func(path string, body, out any) int {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode/100 == 2 {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	src := testSource()
	var created CreateResponse
	if code := post("/v1/sessions", CreateRequest{Name: "eco", Source: src, Config: SessionConfig{Workers: 1}}, &created); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}

	// Bank a scan-compatible pair by probing merge edits (a rejected edit
	// reports 422 and leaves no trace).
	d, _, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, in := range d.Registers() {
		if !in.Fixed && !in.SizeOnly && in.Bits() == 1 && len(names) < 60 {
			names = append(names, in.Name)
		}
	}
	merged := false
probe:
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			var eres EditsResponse
			req := EditsRequest{Edits: []flow.Edit{flow.MergeGroup("eco_mbr", names[i], names[j])}}
			code := post("/v1/sessions/eco/edits", req, &eres)
			if code == http.StatusOK && eres.Error == nil {
				if len(eres.Merged) != 1 || eres.Merged[0] != "eco_mbr" {
					t.Fatalf("merge response %+v", eres)
				}
				merged = true
				break probe
			}
		}
	}
	if !merged {
		t.Fatal("no mergeable pair over HTTP")
	}

	var dres DecomposeResponse
	req := DecomposeRequest{Decompose: flow.DecomposeConfig{Budget: 2, SlackThresholdPS: 1e9}}
	if code := post("/v1/sessions/eco/decompose", req, &dres); code != http.StatusOK {
		t.Fatalf("decompose = %d", code)
	}
	if dres.Decompose.Decomposed == 0 || dres.Decompose.Parts < 2 {
		t.Fatalf("decompose outcome %+v", dres.Decompose)
	}
	if len(dres.Engines) == 0 {
		t.Fatal("decompose response missing engine summaries")
	}

	var rres RestoreResponse
	if code := post("/v1/sessions/eco/restore", struct{}{}, &rres); code != http.StatusOK {
		t.Fatalf("restore = %d", code)
	}
	if rres.Restore.Restored == 0 {
		t.Fatal("restore re-merged nothing")
	}

	var mres MeasureResponse
	if code := post("/v1/sessions/eco/measure", struct{}{}, &mres); code != http.StatusOK {
		t.Fatalf("measure = %d", code)
	}

	// Counters and snapshot round trip.
	resp, err := http.Get(ts.URL + "/v1/sessions/eco")
	if err != nil {
		t.Fatal(err)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Info.Decomposes != 1 {
		t.Fatalf("info.Decomposes = %d, want 1", info.Info.Decomposes)
	}

	resp, err = http.Get(ts.URL + "/v1/sessions/eco/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	snap.Name = "eco2"
	var restored CreateResponse
	if code := post("/v1/sessions/restore", snap, &restored); code != http.StatusCreated {
		t.Fatalf("snapshot restore = %d", code)
	}
	var m1, m2 MeasureResponse
	if code := post("/v1/sessions/eco/measure", struct{}{}, &m1); code != http.StatusOK {
		t.Fatalf("measure eco = %d", code)
	}
	if code := post("/v1/sessions/eco2/measure", struct{}{}, &m2); code != http.StatusOK {
		t.Fatalf("measure eco2 = %d", code)
	}
	if m1.Canonical != m2.Canonical {
		t.Fatalf("restored ECO session diverged:\nlive:\n%srestored:\n%s", m1.Canonical, m2.Canonical)
	}

	var stats ManagerStats
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The manager counter tracks live API calls only — snapshot replay
	// re-runs the pass inside the restored session without re-counting it
	// as new work (the session's own Decomposes counter does replay).
	if stats.Decomposes != 1 {
		t.Fatalf("stats.Decomposes = %d, want 1", stats.Decomposes)
	}
	_ = created
	_ = mres
}
