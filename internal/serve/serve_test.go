package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/serve/wire"
)

// testSource is a small benchmark design that loads fast.
func testSource() Source { return Source{Profile: "D1", Scale: 200} }

// skewEdits builds n skew edits over the source design's first movable
// registers (profile generation is deterministic, so names are stable).
func skewEdits(t *testing.T, src Source, n int) []flow.Edit {
	t.Helper()
	d, _, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	var edits []flow.Edit
	for _, in := range d.Registers() {
		if len(edits) == n {
			break
		}
		if in.Fixed {
			continue
		}
		edits = append(edits, flow.Skew(in.Name, float64(7+3*len(edits))))
	}
	if len(edits) < n {
		t.Fatalf("only %d movable registers", len(edits))
	}
	return edits
}

func TestManagerCreateGetEvict(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Create("a", testSource(), SessionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("a", testSource(), SessionConfig{}); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if got, ok := m.Get("a"); !ok || got != s {
		t.Fatal("Get did not return the created session")
	}
	if _, ok := m.Get("nope"); ok {
		t.Fatal("Get of unknown name succeeded")
	}
	if !m.Evict("a") {
		t.Fatal("Evict failed")
	}
	if m.Evict("a") {
		t.Fatal("double Evict succeeded")
	}
	// Evicted sessions refuse every op with ErrEvicted.
	if _, _, err := s.Apply(nil); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Apply after evict = %v, want ErrEvicted", err)
	}
	if _, _, err := s.Measure(); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Measure after evict = %v, want ErrEvicted", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrEvicted) {
		t.Fatalf("Snapshot after evict = %v, want ErrEvicted", err)
	}
	st := m.Stats()
	if st.Live != 0 || st.Created != 1 || st.Evicted != 1 {
		t.Fatalf("stats after evict: %+v", st)
	}
}

func TestManagerLRUEviction(t *testing.T) {
	m := NewManager(Options{MaxSessions: 2})
	a, err := m.Create("a", testSource(), SessionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("b", testSource(), SessionConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := m.Get("a"); !ok {
		t.Fatal("Get a")
	}
	if _, err := m.Create("c", testSource(), SessionConfig{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	names := m.Names()
	if len(names) != 2 {
		t.Fatalf("live sessions = %v, want 2", names)
	}
	if _, ok := m.Get("b"); ok {
		t.Fatal("LRU victim b still live")
	}
	if _, _, err := a.Measure(); err != nil {
		t.Fatalf("survivor a unusable: %v", err)
	}
	st := m.Stats()
	if st.EvictedLRU != 1 {
		t.Fatalf("evictedLRU = %d, want 1", st.EvictedLRU)
	}
}

func TestSessionJournalAndInfo(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Create("j", testSource(), SessionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	edits := skewEdits(t, testSource(), 3)
	if _, _, err := s.Apply(edits); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Measure(); err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.Batches != 1 || info.Edits != 3 || info.Measures != 1 || info.Ops != 2 {
		t.Fatalf("info counters: %+v", info)
	}
	// A failing batch journals only its applied prefix.
	bad := append(edits[:1:1], flow.MoveTo("no_such", 1, 1))
	if _, _, err := s.Apply(bad); err == nil {
		t.Fatal("expected failing batch")
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	last := snap.Ops[len(snap.Ops)-1]
	if last.Kind != OpEdits || len(last.Edits) != 1 {
		t.Fatalf("journaled tail op %+v, want the 1-edit prefix", last)
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	m := NewManager(Options{})
	ts := httptest.NewServer(Handler(m))
	defer ts.Close()

	post := func(path string, body, out any) int {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		// 422 bodies carry the applied prefix, so decode those too.
		if out != nil && (resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusUnprocessableEntity) {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}
	get := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	if code := get("/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	var created CreateResponse
	req := CreateRequest{Name: "h", Source: testSource(), Config: SessionConfig{Workers: 1}}
	if code := post("/v1/sessions", req, &created); code != http.StatusCreated {
		t.Fatalf("create = %d", code)
	}
	if created.Name != "h" || created.Design == "" {
		t.Fatalf("create response %+v", created)
	}
	if code := post("/v1/sessions", req, nil); code != http.StatusBadRequest {
		t.Fatalf("duplicate create = %d", code)
	}

	edits := skewEdits(t, testSource(), 2)
	var eres EditsResponse
	if code := post("/v1/sessions/h/edits", EditsRequest{Edits: edits}, &eres); code != http.StatusOK {
		t.Fatalf("edits = %d", code)
	}
	if eres.Applied != 2 {
		t.Fatalf("applied %d", eres.Applied)
	}
	// Partial failure: 422 with the applied prefix and the error string.
	bad := []flow.Edit{edits[0], flow.MoveTo("no_such", 1, 1)}
	if code := post("/v1/sessions/h/edits", EditsRequest{Edits: bad}, &eres); code != http.StatusUnprocessableEntity {
		t.Fatalf("partial batch = %d", code)
	}
	if eres.Applied != 1 || eres.Error == nil || !strings.Contains(eres.Error.Message, "no_such") {
		t.Fatalf("partial response %+v", eres)
	}
	if eres.Error.Code != wire.CodeValidation || eres.Error.Op != "edits" {
		t.Fatalf("partial error envelope %+v", eres.Error)
	}

	var mres MeasureResponse
	if code := post("/v1/sessions/h/measure", struct{}{}, &mres); code != http.StatusOK {
		t.Fatalf("measure = %d", code)
	}
	if mres.Canonical == "" || mres.Metrics.TotalRegs == 0 {
		t.Fatalf("measure response %+v", mres)
	}
	if len(mres.Engines) == 0 {
		t.Fatal("measure response missing engine summaries")
	}

	var cres ComposeResponse
	if code := post("/v1/sessions/h/compose", struct{}{}, &cres); code != http.StatusOK {
		t.Fatalf("compose = %d", code)
	}

	var info InfoResponse
	if code := get("/v1/sessions/h", &info); code != http.StatusOK {
		t.Fatalf("info = %d", code)
	}
	if info.Info.Measures != 1 || info.Info.Composes != 1 {
		t.Fatalf("info %+v", info.Info)
	}
	var list ListResponse
	if code := get("/v1/sessions", &list); code != http.StatusOK || len(list.Sessions) != 1 {
		t.Fatalf("list = %d %+v", code, list)
	}

	var snap Snapshot
	if code := get("/v1/sessions/h/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("snapshot = %d", code)
	}
	snap.Name = "h2"
	var restored CreateResponse
	if code := post("/v1/sessions/restore", snap, &restored); code != http.StatusCreated {
		t.Fatalf("restore = %d", code)
	}
	if restored.Ops != len(snap.Ops) {
		t.Fatalf("restored ops %d, want %d", restored.Ops, len(snap.Ops))
	}
	// The restored session serves the same measurement bytes next.
	var m1, m2 MeasureResponse
	if code := post("/v1/sessions/h/measure", struct{}{}, &m1); code != http.StatusOK {
		t.Fatalf("measure h = %d", code)
	}
	if code := post("/v1/sessions/h2/measure", struct{}{}, &m2); code != http.StatusOK {
		t.Fatalf("measure h2 = %d", code)
	}
	if m1.Canonical != m2.Canonical {
		t.Fatalf("restored session diverged:\nlive:\n%srestored:\n%s", m1.Canonical, m2.Canonical)
	}

	if code := post("/v1/sessions/restore", snap, nil); code != http.StatusBadRequest {
		t.Fatalf("restore over live name = %d", code)
	}

	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/h2", nil)
	resp, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	if code := get("/v1/sessions/h2", nil); code != http.StatusNotFound {
		t.Fatalf("info after delete = %d", code)
	}

	var stats ManagerStats
	if code := get("/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	if stats.Created != 1 || stats.Restored != 1 || stats.Evicted != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestRestoreRejectsTamperedSnapshot(t *testing.T) {
	m := NewManager(Options{})
	s, err := m.Create("t", testSource(), SessionConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Apply(skewEdits(t, testSource(), 2)); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap.Name = "t2"
	snap.StateSHA = strings.Repeat("0", len(snap.StateSHA))
	if _, err := m.Restore("", snap); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered restore = %v, want digest divergence", err)
	}
	snap2, _ := s.Snapshot()
	snap2.Name = "t3"
	snap2.Version = SnapshotVersion + 1
	if _, err := m.Restore("", snap2); err == nil {
		t.Fatal("future snapshot version accepted")
	}
	if got := len(m.Names()); got != 1 {
		t.Fatalf("failed restores leaked sessions: %d live", got)
	}
}

func TestSourceValidation(t *testing.T) {
	m := NewManager(Options{})
	if _, err := m.Create("x", Source{Profile: "D9", Scale: 10}, SessionConfig{}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := m.Create("", testSource(), SessionConfig{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if got := len(m.Names()); got != 0 {
		t.Fatalf("failed creates leaked: %d", got)
	}
}
