package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/flow"
	"repro/internal/serve/wire"
)

// API request/response shapes. Engine summaries ride on every mutating
// response so clients (and the load harness's zero-rebuild assertion) can
// watch the delta/rebuild accounting per request.

// CreateRequest opens a session.
type CreateRequest struct {
	Name   string        `json:"name"`
	Source Source        `json:"source"`
	Config SessionConfig `json:"config"`
}

// CreateResponse acknowledges a created or restored session.
type CreateResponse struct {
	Name    string               `json:"name"`
	Design  string               `json:"design"`
	Epoch   uint64               `json:"epoch"`
	Ops     int                  `json:"ops"`
	Engines wire.EngineSummaries `json:"engines"`
}

// EditsRequest streams one edit batch into a session.
type EditsRequest struct {
	Edits []flow.Edit `json:"edits"`
}

// EditsResponse reports what the batch did. A partial application (some
// edits applied, then one rejected) carries the applied prefix plus a
// structured Error — the batch is not transactional.
type EditsResponse struct {
	Applied int                  `json:"applied"`
	Merged  []string             `json:"merged,omitempty"`
	Split   []string             `json:"split,omitempty"`
	Epoch   uint64               `json:"epoch"`
	Error   *wire.Error          `json:"error,omitempty"`
	Engines wire.EngineSummaries `json:"engines"`
}

// MeasureResponse is one incremental measurement.
type MeasureResponse struct {
	Metrics   wire.Metrics         `json:"metrics"`
	Canonical string               `json:"canonical"`
	Nanos     int64                `json:"nanos"`
	Engines   wire.EngineSummaries `json:"engines"`
}

// ComposeResponse is one composition pass's outcome.
type ComposeResponse struct {
	Compose ComposeInfo          `json:"compose"`
	Nanos   int64                `json:"nanos"`
	Engines wire.EngineSummaries `json:"engines"`
}

// DecomposeRequest configures one decomposition pass. The zero config is
// rejected (it selects no victims); set Budget, or All for the legacy
// debank-everything preset.
type DecomposeRequest struct {
	Decompose flow.DecomposeConfig `json:"decompose"`
}

// DecomposeResponse is one decomposition pass's outcome.
type DecomposeResponse struct {
	Decompose DecomposeInfo        `json:"decompose"`
	Nanos     int64                `json:"nanos"`
	Engines   wire.EngineSummaries `json:"engines"`
}

// RestoreResponse is one restore pass's outcome (leftover split bits
// re-merged into scan-compatible groups).
type RestoreResponse struct {
	Restore RestoreInfo          `json:"restore"`
	Nanos   int64                `json:"nanos"`
	Engines wire.EngineSummaries `json:"engines"`
}

// InfoResponse describes one session.
type InfoResponse struct {
	Info    SessionInfo          `json:"info"`
	Engines wire.EngineSummaries `json:"engines"`
}

// ListResponse enumerates live sessions, most recently used first.
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// Handler returns the server's HTTP API:
//
//	GET    /healthz                       liveness
//	GET    /v1/stats                      server counters
//	POST   /v1/sessions                   create (CreateRequest)
//	GET    /v1/sessions                   list
//	GET    /v1/sessions/{name}            info + engine summaries
//	DELETE /v1/sessions/{name}            evict (engines invalidated)
//	POST   /v1/sessions/{name}/edits      apply an edit batch
//	POST   /v1/sessions/{name}/measure    incremental Table 1 measurement
//	POST   /v1/sessions/{name}/compose    one composition pass
//	POST   /v1/sessions/{name}/decompose  one slack-driven decomposition pass
//	POST   /v1/sessions/{name}/restore    re-merge leftover split bits
//	GET    /v1/sessions/{name}/snapshot   event-sourced snapshot
//	POST   /v1/sessions/restore           restore from a snapshot body
//
// Every non-2xx response body is a wire.Error envelope: a stable code, the
// op that failed, and the message.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		const op = "create"
		var req CreateRequest
		if !readJSON(w, r, op, &req) {
			return
		}
		s, err := m.Create(req.Name, req.Source, req.Config)
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, createResponse(s))
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ListResponse{Sessions: m.List()})
	})

	mux.HandleFunc("POST /v1/sessions/restore", func(w http.ResponseWriter, r *http.Request) {
		const op = "restore_session"
		var snap Snapshot
		if !readJSON(w, r, op, &snap) {
			return
		}
		s, err := m.Restore("", &snap)
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, createResponse(s))
	})

	mux.HandleFunc("GET /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		const op = "info"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		writeJSON(w, http.StatusOK, InfoResponse{
			Info:    s.Info(),
			Engines: wire.Engines(s.Engines()),
		})
	})

	mux.HandleFunc("DELETE /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		const op = "evict"
		if !m.Evict(r.PathValue("name")) {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/sessions/{name}/edits", func(w http.ResponseWriter, r *http.Request) {
		const op = "edits"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		var req EditsRequest
		if !readJSON(w, r, op, &req) {
			return
		}
		res, engs, err := s.Apply(req.Edits)
		if err != nil && res == nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		resp := EditsResponse{
			Applied: res.Applied,
			Merged:  res.Merged,
			Split:   res.Split,
			Epoch:   res.Epoch,
			Engines: wire.Engines(engs),
		}
		status := http.StatusOK
		if err != nil {
			// Partial application: report the applied prefix with the error
			// rather than a bare failure — the batch is not transactional.
			resp.Error = wireError(op, statusFor(err), err)
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)
	})

	mux.HandleFunc("POST /v1/sessions/{name}/measure", func(w http.ResponseWriter, r *http.Request) {
		const op = "measure"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		t0 := time.Now()
		met, engs, err := s.Measure()
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, MeasureResponse{
			Metrics:   wire.FromMetrics(met),
			Canonical: met.Canonical(),
			Nanos:     time.Since(t0).Nanoseconds(),
			Engines:   wire.Engines(engs),
		})
	})

	mux.HandleFunc("POST /v1/sessions/{name}/compose", func(w http.ResponseWriter, r *http.Request) {
		const op = "compose"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		t0 := time.Now()
		info, engs, err := s.Compose()
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, ComposeResponse{
			Compose: *info,
			Nanos:   time.Since(t0).Nanoseconds(),
			Engines: wire.Engines(engs),
		})
	})

	mux.HandleFunc("POST /v1/sessions/{name}/decompose", func(w http.ResponseWriter, r *http.Request) {
		const op = "decompose"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		var req DecomposeRequest
		if !readJSON(w, r, op, &req) {
			return
		}
		t0 := time.Now()
		info, engs, err := s.Decompose(req.Decompose)
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, DecomposeResponse{
			Decompose: *info,
			Nanos:     time.Since(t0).Nanoseconds(),
			Engines:   wire.Engines(engs),
		})
	})

	mux.HandleFunc("POST /v1/sessions/{name}/restore", func(w http.ResponseWriter, r *http.Request) {
		const op = "restore"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		t0 := time.Now()
		info, engs, err := s.Restore()
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, RestoreResponse{
			Restore: *info,
			Nanos:   time.Since(t0).Nanoseconds(),
			Engines: wire.Engines(engs),
		})
	})

	mux.HandleFunc("GET /v1/sessions/{name}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		const op = "snapshot"
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, op, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		snap, err := s.Snapshot()
		if err != nil {
			writeError(w, op, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	return mux
}

func createResponse(s *Session) CreateResponse {
	info := s.Info()
	return CreateResponse{
		Name:    info.Name,
		Design:  info.Design,
		Epoch:   info.Epoch,
		Ops:     info.Ops,
		Engines: wire.Engines(s.Engines()),
	}
}

func errSessionNotFound(r *http.Request) error {
	return fmt.Errorf("serve: no session %q", r.PathValue("name"))
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrEvicted):
		return http.StatusGone
	default:
		return http.StatusBadRequest
	}
}

// codeFor maps an HTTP status to the stable wire error code. Every error
// path funnels through here so the code set stays closed.
func codeFor(status int) string {
	switch status {
	case http.StatusNotFound:
		return wire.CodeNotFound
	case http.StatusGone:
		return wire.CodeEvicted
	case http.StatusRequestEntityTooLarge:
		return wire.CodeBodyTooLarge
	default:
		return wire.CodeValidation
	}
}

// maxRequestBytes bounds request bodies so one oversized POST cannot
// allocate unbounded server memory. Generous because a restore body
// carries a full design snapshot plus its edit journal.
const maxRequestBytes = 64 << 20

func readJSON(w http.ResponseWriter, r *http.Request, op string, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, op, status, fmt.Errorf("serve: decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func wireError(op string, status int, err error) *wire.Error {
	return &wire.Error{Code: codeFor(status), Op: op, Message: err.Error()}
}

func writeError(w http.ResponseWriter, op string, status int, err error) {
	writeJSON(w, status, wireError(op, status, err))
}
