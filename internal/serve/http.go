package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/flow"
	"repro/internal/serve/wire"
)

// API request/response shapes. Engine summaries ride on every mutating
// response so clients (and the load harness's zero-rebuild assertion) can
// watch the delta/rebuild accounting per request.

// CreateRequest opens a session.
type CreateRequest struct {
	Name   string        `json:"name"`
	Source Source        `json:"source"`
	Config SessionConfig `json:"config"`
}

// CreateResponse acknowledges a created or restored session.
type CreateResponse struct {
	Name    string               `json:"name"`
	Design  string               `json:"design"`
	Epoch   uint64               `json:"epoch"`
	Ops     int                  `json:"ops"`
	Engines wire.EngineSummaries `json:"engines"`
}

// EditsRequest streams one edit batch into a session.
type EditsRequest struct {
	Edits []flow.Edit `json:"edits"`
}

// EditsResponse reports what the batch did.
type EditsResponse struct {
	Applied int                  `json:"applied"`
	Merged  []string             `json:"merged,omitempty"`
	Epoch   uint64               `json:"epoch"`
	Error   string               `json:"error,omitempty"`
	Engines wire.EngineSummaries `json:"engines"`
}

// MeasureResponse is one incremental measurement.
type MeasureResponse struct {
	Metrics   wire.Metrics         `json:"metrics"`
	Canonical string               `json:"canonical"`
	Nanos     int64                `json:"nanos"`
	Engines   wire.EngineSummaries `json:"engines"`
}

// ComposeResponse is one composition pass's outcome.
type ComposeResponse struct {
	Compose ComposeInfo          `json:"compose"`
	Nanos   int64                `json:"nanos"`
	Engines wire.EngineSummaries `json:"engines"`
}

// InfoResponse describes one session.
type InfoResponse struct {
	Info    SessionInfo          `json:"info"`
	Engines wire.EngineSummaries `json:"engines"`
}

// ListResponse enumerates live sessions, most recently used first.
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	GET    /healthz                      liveness
//	GET    /v1/stats                     server counters
//	POST   /v1/sessions                  create (CreateRequest)
//	GET    /v1/sessions                  list
//	GET    /v1/sessions/{name}           info + engine summaries
//	DELETE /v1/sessions/{name}           evict (engines invalidated)
//	POST   /v1/sessions/{name}/edits     apply an edit batch
//	POST   /v1/sessions/{name}/measure   incremental Table 1 measurement
//	POST   /v1/sessions/{name}/compose   one composition pass
//	GET    /v1/sessions/{name}/snapshot  event-sourced snapshot
//	POST   /v1/sessions/restore          restore from a snapshot body
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Stats())
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req CreateRequest
		if !readJSON(w, r, &req) {
			return
		}
		s, err := m.Create(req.Name, req.Source, req.Config)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, createResponse(s))
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ListResponse{Sessions: m.List()})
	})

	mux.HandleFunc("POST /v1/sessions/restore", func(w http.ResponseWriter, r *http.Request) {
		var snap Snapshot
		if !readJSON(w, r, &snap) {
			return
		}
		s, err := m.Restore("", &snap)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, createResponse(s))
	})

	mux.HandleFunc("GET /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		writeJSON(w, http.StatusOK, InfoResponse{
			Info:    s.Info(),
			Engines: wire.Engines(s.Engines()),
		})
	})

	mux.HandleFunc("DELETE /v1/sessions/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !m.Evict(r.PathValue("name")) {
			writeError(w, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/sessions/{name}/edits", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		var req EditsRequest
		if !readJSON(w, r, &req) {
			return
		}
		res, engs, err := s.Apply(req.Edits)
		if err != nil && res == nil {
			writeError(w, statusFor(err), err)
			return
		}
		resp := EditsResponse{
			Applied: res.Applied,
			Merged:  res.Merged,
			Epoch:   res.Epoch,
			Engines: wire.Engines(engs),
		}
		status := http.StatusOK
		if err != nil {
			// Partial application: report the applied prefix with the error
			// rather than a bare failure — the batch is not transactional.
			resp.Error = err.Error()
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, resp)
	})

	mux.HandleFunc("POST /v1/sessions/{name}/measure", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		t0 := time.Now()
		met, engs, err := s.Measure()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, MeasureResponse{
			Metrics:   wire.FromMetrics(met),
			Canonical: met.Canonical(),
			Nanos:     time.Since(t0).Nanoseconds(),
			Engines:   wire.Engines(engs),
		})
	})

	mux.HandleFunc("POST /v1/sessions/{name}/compose", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		t0 := time.Now()
		info, engs, err := s.Compose()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, ComposeResponse{
			Compose: *info,
			Nanos:   time.Since(t0).Nanoseconds(),
			Engines: wire.Engines(engs),
		})
	})

	mux.HandleFunc("GET /v1/sessions/{name}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("name"))
		if !ok {
			writeError(w, http.StatusNotFound, errSessionNotFound(r))
			return
		}
		snap, err := s.Snapshot()
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	})

	return mux
}

func createResponse(s *Session) CreateResponse {
	info := s.Info()
	return CreateResponse{
		Name:    info.Name,
		Design:  info.Design,
		Epoch:   info.Epoch,
		Ops:     info.Ops,
		Engines: wire.Engines(s.Engines()),
	}
}

func errSessionNotFound(r *http.Request) error {
	return fmt.Errorf("serve: no session %q", r.PathValue("name"))
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrEvicted):
		return http.StatusGone
	default:
		return http.StatusBadRequest
	}
}

// maxRequestBytes bounds request bodies so one oversized POST cannot
// allocate unbounded server memory. Generous because a restore body
// carries a full design snapshot plus its edit journal.
const maxRequestBytes = 64 << 20

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("serve: decode request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
