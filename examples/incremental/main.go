// Incremental: the methodology is designed to be applied at several points
// of the flow (§1 argues for this explicitly). This example runs MBR
// composition twice on the same design:
//
//  1. after "global placement" — the placement is deliberately perturbed to
//     emulate the rough positions global placement produces;
//
//  2. incrementally again after legalized detailed placement, where better
//     position information exposes additional merges among the registers
//     the first pass had to leave alone.
//
//     go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
)

func composeOnce(d *netlist.Design, gen *bench.Result, prefix string) (*core.Result, error) {
	res, err := sta.New(d).Run()
	if err != nil {
		return nil, err
	}
	g := compat.Build(d, res, gen.Plan, compat.DefaultOptions())
	opts := core.DefaultOptions()
	opts.NamePrefix = prefix
	return core.Compose(d, g, gen.Plan, opts)
}

func main() {
	gen, err := bench.Generate(bench.D3(bench.ProfileOpts{Scale: 60}))
	if err != nil {
		log.Fatal(err)
	}
	d := gen.Design
	start := len(d.Registers())

	// Emulate global placement: movable cells get knocked off their legal
	// sites by up to ~3 rows.
	rng := rand.New(rand.NewSource(99))
	d.Insts(func(in *netlist.Inst) {
		if in.Fixed || in.Kind == netlist.KindPort || in.Area() == 0 {
			return
		}
		d.MoveInst(in, geom.Point{
			X: in.Pos.X + int64(rng.Intn(7000)) - 3500,
			Y: in.Pos.Y + int64(rng.Intn(7000)) - 3500,
		})
	})

	// Pass 1: after global placement.
	res1, err := composeOnce(d, gen, "gp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 1 (post-global-place):   %4d -> %4d registers (%d MBRs composed)\n",
		res1.RegsBefore, res1.RegsAfter, len(res1.MBRs))

	// Detailed placement: legalize everything.
	lr := place.Legalize(d)
	if len(lr.Failed) > 0 {
		log.Fatalf("legalization failed for %d cells", len(lr.Failed))
	}
	fmt.Printf("detailed placement: %d cells moved, max displacement %d DBU\n",
		lr.Moved, lr.MaxDisplacement)

	// Pass 2: incremental composition on the legalized design. The MBRs
	// from pass 1 are themselves composable inputs now — exactly the
	// "incremental on designs already rich in MBRs" setting of the paper.
	res2, err := composeOnce(d, gen, "dp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pass 2 (post-detailed-place): %4d -> %4d registers (%d MBRs composed)\n",
		res2.RegsBefore, res2.RegsAfter, len(res2.MBRs))

	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := gen.Plan.Validate(d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d -> %d registers across both passes\n", start, len(d.Registers()))
}
