// Scanchains: demonstrate how scan organization constrains MBR composition
// (§2). The same register bank is composed three times:
//
//  1. unordered chains, cross-chain movement allowed — full freedom;
//  2. one ordered scan section — only contiguous runs may merge, and the
//     merge order inside each MBR preserves the scan order;
//  3. two partitions — registers never merge across the partition line.
//
// After each composition the chains are re-stitched and validated.
//
//	go run ./examples/scanchains
package main

import (
	"fmt"
	"log"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sta"
)

// buildBank creates a 12-register internal-scan bank and a scan plan shaped
// by the given configurator.
func buildBank(makeChains func(p *scan.Plan, ids []netlist.InstID) error) (*netlist.Design, *scan.Plan, error) {
	library := lib.MustGenerateDefault()
	class := lib.FuncClass{Kind: lib.FlipFlop, Reset: lib.AsyncReset, Scan: lib.InternalScan}
	cell := library.CellsOfWidth(class, 1)[0]
	d := netlist.NewDesign("scandemo", geom.RectWH(0, 0, 100000, 100000), library)
	d.Timing = netlist.TimingSpec{
		ClockPeriod: 1500, WireCapPerDBU: 0.0002, WireDelayPerDBU: 0.004,
		InputDelay: 100, OutputDelay: 100,
	}
	clk := d.AddNet("clk", true)
	rst := d.AddNet("rst", false)
	se := d.AddNet("se", false)
	for i, n := range []*netlist.Net{rst, se} {
		p, err := d.AddPort(fmt.Sprintf("ctrl_%d", i), true, geom.Point{X: 0, Y: int64(i) * 1200})
		if err != nil {
			return nil, nil, err
		}
		d.Connect(d.OutPin(p), n)
	}

	var ids []netlist.InstID
	for i := 0; i < 12; i++ {
		r, err := d.AddRegister(fmt.Sprintf("sr_%d", i), cell,
			geom.Point{X: 40000 + int64(i)*1600, Y: 48000})
		if err != nil {
			return nil, nil, err
		}
		d.Connect(d.ClockPin(r), clk)
		d.Connect(d.FindPin(r, netlist.PinReset, 0), rst)
		d.Connect(d.FindPin(r, netlist.PinScanEnable, 0), se)
		ip, _ := d.AddPort(fmt.Sprintf("in_%d", i), true, geom.Point{X: 35000, Y: 48000 + int64(i)*100})
		op, _ := d.AddPort(fmt.Sprintf("out_%d", i), false, geom.Point{X: 62000, Y: 48000 + int64(i)*100})
		dn := d.AddNet(fmt.Sprintf("d%d", i), false)
		qn := d.AddNet(fmt.Sprintf("q%d", i), false)
		d.Connect(d.OutPin(ip), dn)
		d.Connect(d.DPin(r, 0), dn)
		d.Connect(d.QPin(r, 0), qn)
		d.Connect(d.FindPin(op, netlist.PinData, 0), qn)
		ids = append(ids, r.ID)
	}
	plan := scan.NewPlan()
	if err := makeChains(plan, ids); err != nil {
		return nil, nil, err
	}
	return d, plan, nil
}

func compose(d *netlist.Design, plan *scan.Plan) (*core.Result, error) {
	res, err := sta.New(d).Run()
	if err != nil {
		return nil, err
	}
	g := compat.Build(d, res, plan, compat.DefaultOptions())
	return core.Compose(d, g, plan, core.DefaultOptions())
}

func run(label string, makeChains func(p *scan.Plan, ids []netlist.InstID) error) {
	d, plan, err := buildBank(makeChains)
	if err != nil {
		log.Fatal(err)
	}
	cres, err := compose(d, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-38s registers 12 -> %d, MBR widths:", label, cres.RegsAfter)
	for _, m := range cres.MBRs {
		fmt.Printf(" %d", m.Cell.Bits)
	}
	fmt.Println()
	// Chains survive the merge and can still be stitched in order.
	if err := plan.Validate(d); err != nil {
		log.Fatal(err)
	}
	if err := plan.Stitch(d, "demo"); err != nil {
		log.Fatal(err)
	}
	for _, c := range plan.Chains() {
		fmt.Printf("    chain %d (partition %d, ordered=%v): %d elements\n",
			c.ID, c.Partition, c.Ordered, len(c.Regs))
	}
}

func main() {
	run("unordered, one partition:", func(p *scan.Plan, ids []netlist.InstID) error {
		_, err := p.AddChain(0, false, ids)
		return err
	})
	run("ordered scan section:", func(p *scan.Plan, ids []netlist.InstID) error {
		_, err := p.AddChain(0, true, ids)
		return err
	})
	run("two partitions (6+6):", func(p *scan.Plan, ids []netlist.InstID) error {
		if _, err := p.AddChain(0, false, ids[:6]); err != nil {
			return err
		}
		_, err := p.AddChain(1, false, ids[6:])
		return err
	})
}
