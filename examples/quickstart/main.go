// Quickstart: build a tiny placed design by hand, run timing-driven MBR
// composition on it, and print what was merged.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func main() {
	// A 28nm-like register library with 1/2/4/8-bit MBRs.
	library := lib.MustGenerateDefault()
	class := lib.FuncClass{Kind: lib.FlipFlop, Reset: lib.AsyncReset}
	cell1 := library.CellsOfWidth(class, 1)[0]

	// An empty 100µm × 100µm core (1 DBU = 1 nm).
	d := netlist.NewDesign("quickstart", geom.RectWH(0, 0, 100000, 100000), library)
	d.Timing = netlist.TimingSpec{
		ClockPeriod:     1500,   // ps
		WireCapPerDBU:   0.0002, // fF/nm
		WireDelayPerDBU: 0.004,  // ps/nm
		InputDelay:      100,
		OutputDelay:     100,
	}

	// Eight 1-bit registers in a row, sharing clock and reset — a register
	// bank as logic synthesis would leave it.
	clk := d.AddNet("clk", true)
	rst := d.AddNet("rst", false)
	rstPort, _ := d.AddPort("rst_in", true, geom.Point{X: 0, Y: 0})
	d.Connect(d.OutPin(rstPort), rst)

	var regs []*netlist.Inst
	for i := 0; i < 8; i++ {
		r, err := d.AddRegister(fmt.Sprintf("bank_%d", i), cell1,
			geom.Point{X: 40000 + int64(i)*1500, Y: 48000})
		if err != nil {
			log.Fatal(err)
		}
		d.Connect(d.ClockPin(r), clk)
		d.Connect(d.FindPin(r, netlist.PinReset, 0), rst)
		regs = append(regs, r)
	}

	// Give every bit a driver and a load so it has real timing.
	for i, r := range regs {
		in, _ := d.AddPort(fmt.Sprintf("in_%d", i), true, geom.Point{X: 35000, Y: 48000 + int64(i)*100})
		out, _ := d.AddPort(fmt.Sprintf("out_%d", i), false, geom.Point{X: 60000, Y: 48000 + int64(i)*100})
		dn := d.AddNet(fmt.Sprintf("d%d", i), false)
		qn := d.AddNet(fmt.Sprintf("q%d", i), false)
		d.Connect(d.OutPin(in), dn)
		d.Connect(d.DPin(r, 0), dn)
		d.Connect(d.QPin(r, 0), qn)
		d.Connect(d.FindPin(out, netlist.PinData, 0), qn)
	}

	// Timing analysis → compatibility graph → placement-aware ILP.
	res, err := sta.New(d).Run()
	if err != nil {
		log.Fatal(err)
	}
	g := compat.Build(d, res, nil, compat.DefaultOptions())
	fmt.Printf("compatibility graph: %d composable registers, %d edges\n",
		len(g.Regs), g.NumEdges())

	cres, err := core.Compose(d, g, nil, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registers: %d -> %d (ILP objective %.3f, %d candidates)\n",
		cres.RegsBefore, cres.RegsAfter, cres.ObjectiveSum, cres.Candidates)
	for _, m := range cres.MBRs {
		fmt.Printf("  new MBR %s: %s (%d bits) at %v\n",
			m.Inst.Name, m.Cell.Name, m.Bits, m.Inst.Pos)
	}
}
