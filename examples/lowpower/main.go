// Lowpower: run the complete Fig. 4 flow on a D1-like MBR-rich design and
// report the clock-power picture — sink count, clock-tree capacitance,
// buffer count and the estimated dynamic clock power — before and after
// incremental MBR composition.
//
//	go run ./examples/lowpower
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
)

func main() {
	spec := bench.D1(bench.ProfileOpts{Scale: 40})
	gen, err := bench.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	d := gen.Design
	fmt.Printf("design %s: %d instances, %d registers (%d-%d bit), %d scan chains\n",
		d.Name, d.NumInsts(), len(d.Registers()), 1, 8, len(gen.Plan.Chains()))

	before := core.BitWidthHistogram(d)
	rep, err := flow.Run(d, gen.Plan, flow.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic clock power ∝ f·C·Vdd²: with f and Vdd fixed, the clock-net
	// capacitance ratio is the clock-power ratio.
	const (
		freqGHz = 0.7
		vdd     = 0.9
	)
	power := func(capPF float64) float64 {
		return 0.5 * freqGHz * 1e9 * capPF * 1e-12 * vdd * vdd * 1e3 // mW
	}

	fmt.Printf("\n%-28s %12s %12s %9s\n", "", "base", "composed", "change")
	row := func(name string, b, o float64, unit string) {
		fmt.Printf("%-28s %9.2f %s %9.2f %s %+8.1f%%\n", name, b, unit, o, unit, 100*(o-b)/b)
	}
	rowI := func(name string, b, o int) {
		fmt.Printf("%-28s %12d %12d %+8.1f%%\n", name, b, o, 100*float64(o-b)/float64(b))
	}
	rowI("registers (clock sinks)", rep.Base.TotalRegs, rep.Ours.TotalRegs)
	rowI("clock buffers", rep.Base.ClkBufs, rep.Ours.ClkBufs)
	row("clock capacitance", rep.Base.ClkCapPF, rep.Ours.ClkCapPF, "pF")
	row("clock wirelength", rep.Base.WLClkMM, rep.Ours.WLClkMM, "mm")
	row("est. clock power", power(rep.Base.ClkCapPF), power(rep.Ours.ClkCapPF), "mW")
	rowI("failing endpoints", rep.Base.FailingEndpoints, rep.Ours.FailingEndpoints)
	rowI("overflow edges", rep.Base.OverflowEdges, rep.Ours.OverflowEdges)
	row("cell area", rep.Base.AreaUM2, rep.Ours.AreaUM2, "µm²")

	fmt.Printf("\ncomposition: %d MBRs from %d candidates in %v (%d useful skews, %d downsized)\n",
		len(rep.Compose.MBRs), rep.Compose.Candidates, rep.ComposeTime.Round(1e6),
		rep.SkewedMBRs, rep.ResizedMBRs)

	after := core.BitWidthHistogram(d)
	fmt.Println("\nbit-width mix (Fig. 5 style):")
	for _, bits := range []int{1, 2, 4, 8} {
		fmt.Printf("  %d-bit: %4d -> %4d\n", bits, before[bits], after[bits])
	}
}
