// Command benchgen generates a synthetic MBR-rich benchmark design (one of
// the D1–D5 profiles or a custom size) and writes it, plus its scan plan,
// as JSON.
//
// Usage:
//
//	benchgen -profile D1 -scale 20 -out d1.json [-scanout d1.scan.json]
//	benchgen -regs 2000 -seed 7 -out custom.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/prof"
)

func main() {
	var (
		profile    = flag.String("profile", "", "design profile: D1..D5 (empty = custom)")
		scale      = flag.Int("scale", bench.DefaultScale, "divide the paper's register counts by this")
		regs       = flag.Int("regs", 1000, "custom profile: number of registers")
		seed       = flag.Int64("seed", 1, "custom profile: RNG seed")
		out        = flag.String("out", "", "output design JSON (default stdout)")
		scanOut    = flag.String("scanout", "", "output scan plan JSON (optional)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	var spec bench.Spec
	switch *profile {
	case "D1":
		spec = bench.D1(bench.ProfileOpts{Scale: *scale})
	case "D2":
		spec = bench.D2(bench.ProfileOpts{Scale: *scale})
	case "D3":
		spec = bench.D3(bench.ProfileOpts{Scale: *scale})
	case "D4":
		spec = bench.D4(bench.ProfileOpts{Scale: *scale})
	case "D5":
		spec = bench.D5(bench.ProfileOpts{Scale: *scale})
	case "":
		spec = bench.D1(bench.ProfileOpts{Scale: 1})
		spec.Name = "custom"
		spec.NumRegs = *regs
		spec.Seed = *seed
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want D1..D5)\n", *profile)
		os.Exit(2)
	}

	res, err := bench.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "generate:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := res.Design.WriteJSON(w); err != nil {
		fmt.Fprintln(os.Stderr, "write design:", err)
		os.Exit(1)
	}
	if *scanOut != "" {
		f, err := os.Create(*scanOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Plan.WriteJSON(f, res.Design); err != nil {
			fmt.Fprintln(os.Stderr, "write scan plan:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d instances, %d registers, %d nets\n",
		spec.Name, res.Design.NumInsts(), len(res.Design.Registers()), res.Design.NumNets())
}
