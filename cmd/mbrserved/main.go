// Command mbrserved serves the incremental composition flow over HTTP:
// named sessions hold a design plus its retained engines (timing,
// compatibility graph, clock trees, congestion, metrics, compose memo),
// edit batches stream in, and measurements/compositions stream out at
// O(touched) incremental cost per request. Sessions are snapshotable as
// source + op journal; restore replays and verifies a state digest.
//
//	mbrserved -addr 127.0.0.1:8337
//	curl -s -X POST localhost:8337/v1/sessions -d '{"name":"a","source":{"profile":"D1","scale":200}}'
//	curl -s -X POST localhost:8337/v1/sessions/a/edits -d '{"edits":[{"skew":{"inst":"r0001","skewPS":12}}]}'
//	curl -s -X POST localhost:8337/v1/sessions/a/measure
//	curl -s -X POST localhost:8337/v1/sessions/a/decompose -d '{"decompose":{"budget":4}}'
//
// Edits use the v2 tagged envelope (one op key per record); the v1 flat
// {"op": ...} form is still decoded for old journals and scripts.
//
// -selftest runs the concurrent edit-stream load harness against an
// in-process server and prints its JSON result (determinism oracle,
// zero-rebuild steady-state assertion, throughput and latency counters).
// -eco switches the harness to the ECO-replay stream profile: logic edits
// interleaved with bank (merge), debank (split), compose and slack-driven
// decompose rounds, replayed against the same byte-identity oracle.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/serve"
	"repro/internal/serve/loadtest"
)

func main() {
	def := loadtest.DefaultOptions()
	var (
		addr        = flag.String("addr", "127.0.0.1:8337", "listen address")
		maxSessions = flag.Int("max-sessions", serve.DefaultMaxSessions, "live session cap (LRU eviction beyond it)")

		selftest = flag.Bool("selftest", false, "run the load harness against an in-process server, print JSON result")
		baseURL  = flag.String("base", "", "selftest: target a running server instead of an in-process one")
		profile  = flag.String("profile", def.Profile, "selftest: benchmark profile D1..D5")
		scale    = flag.Int("scale", def.Scale, "selftest: profile scale divisor")
		sessions = flag.Int("sessions", def.Sessions, "selftest: concurrent sessions")
		batches  = flag.Int("batches", def.Batches, "selftest: edit batches per session")
		perBatch = flag.Int("batch-edits", def.BatchEdits, "selftest: edits per batch")
		measureN = flag.Int("measure-every", def.MeasureEvery, "selftest: measure after every n-th batch")
		readers  = flag.Int("readers", def.Readers, "selftest: concurrent info/snapshot readers")
		workers  = flag.Int("workers", 0, "selftest: per-session engine workers (0 = per CPU)")
		seed     = flag.Int64("seed", def.Seed, "selftest: stream PRNG seed")
		oracle   = flag.Int("oracle", 0, "selftest: streams to verify against local replay (0 = all)")

		ecoDef   = loadtest.DefaultECOOptions()
		eco      = flag.Bool("eco", false, "selftest: ECO-replay stream profile (interleaves bank/debank/compose/decompose rounds)")
		ecoEvery = flag.Int("eco-every", ecoDef.ECOEvery, "selftest: parametric batches between ECO rounds")
	)
	flag.Parse()

	if *selftest {
		o := loadtest.Options{
			BaseURL:        *baseURL,
			Profile:        *profile,
			Scale:          *scale,
			Sessions:       *sessions,
			Batches:        *batches,
			BatchEdits:     *perBatch,
			MeasureEvery:   *measureN,
			Readers:        *readers,
			Workers:        *workers,
			Seed:           *seed,
			ComposeAtEnd:   true,
			OracleSessions: *oracle,
			ECO:            *eco,
			ECOEvery:       *ecoEvery,
		}
		if *eco {
			// The ECO profile carries its own sizing defaults; explicit
			// flags still win where the user set them.
			if !flagWasSet("scale") {
				o.Scale = ecoDef.Scale
			}
			if !flagWasSet("sessions") {
				o.Sessions = ecoDef.Sessions
			}
			if !flagWasSet("batches") {
				o.Batches = ecoDef.Batches
			}
			if !flagWasSet("batch-edits") {
				o.BatchEdits = ecoDef.BatchEdits
			}
			if !flagWasSet("measure-every") {
				o.MeasureEvery = ecoDef.MeasureEvery
			}
		}
		res, err := loadtest.Run(o)
		if res != nil {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(res)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	m := serve.NewManager(serve.Options{MaxSessions: *maxSessions})
	log.Printf("mbrserved listening on %s (max %d sessions)", *addr, *maxSessions)
	log.Fatal(http.ListenAndServe(*addr, serve.Handler(m)))
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line (as opposed to resting at its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
