// Command paperrepro regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark suite:
//
//	paperrepro -all                 # everything below
//	paperrepro -table1              # Table 1: Base vs Ours on D1..D5
//	paperrepro -fig3                # the worked example's candidate weights
//	paperrepro -fig5                # bit-width histograms before/after
//	paperrepro -fig6                # ILP vs heuristic register counts
//	paperrepro -ablation bound      # §3 subgraph-bound sweep
//	paperrepro -ablation weights    # §3.2 weights on/off
//	paperrepro -ablation incomplete # incomplete-MBR admission sweep
//
// -scale divides the paper's design sizes (default 20; smaller = bigger
// designs and longer runtime).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/paperex"
	"repro/internal/report"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run everything")
		table1   = flag.Bool("table1", false, "Table 1 reproduction")
		fig3     = flag.Bool("fig3", false, "Fig. 3 worked example")
		fig5     = flag.Bool("fig5", false, "Fig. 5 bit-width histograms")
		fig6     = flag.Bool("fig6", false, "Fig. 6 ILP vs heuristic")
		ablation = flag.String("ablation", "", "bound | weights | incomplete")
		scale    = flag.Int("scale", bench.DefaultScale, "design size divisor")
	)
	flag.IntVar(&workerCount, "workers", 0,
		"composition worker count (0 = GOMAXPROCS, 1 = sequential; results are identical)")
	flag.Parse()
	if *all {
		*table1, *fig3, *fig5, *fig6 = true, true, true, true
	}
	ran := false
	if *fig3 {
		runFig3()
		ran = true
	}
	if *table1 {
		runTable1(*scale)
		ran = true
	}
	if *fig5 {
		runFig5(*scale)
		ran = true
	}
	if *fig6 {
		runFig6(*scale)
		ran = true
	}
	switch *ablation {
	case "bound":
		runAblationBound(*scale)
		ran = true
	case "weights":
		runAblationWeights(*scale)
		ran = true
	case "incomplete":
		runAblationIncomplete(*scale)
		ran = true
	case "decompose":
		runAblationDecompose(*scale)
		ran = true
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown ablation %q\n", *ablation)
		os.Exit(2)
	}
	if *all {
		runAblationBound(*scale)
		runAblationWeights(*scale)
		runAblationIncomplete(*scale)
		runAblationDecompose(*scale)
	}
	if !ran && !*all {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func banner(s string) {
	fmt.Printf("\n=== %s ===\n\n", s)
}

// workerCount is the -workers flag: composition parallelism for every flow
// run below. Zero means GOMAXPROCS; the output is identical at any setting.
var workerCount int

func runFlow(spec bench.Spec, mutate func(*flow.Config)) *flow.Report {
	res, err := bench.Generate(spec)
	if err != nil {
		fatal(err)
	}
	cfg := flow.DefaultConfig()
	cfg.Workers = workerCount
	if mutate != nil {
		mutate(&cfg)
	}
	rep, err := flow.Run(res.Design, res.Plan, cfg)
	if err != nil {
		fatal(err)
	}
	return rep
}

// ---- Table 1 ----

func runTable1(scale int) {
	banner("Table 1: design characteristics before and after MBR composition")
	report.Table1Header(os.Stdout)
	for _, spec := range bench.All(bench.ProfileOpts{Scale: scale}) {
		rep := runFlow(spec, nil)
		report.Table1Rows(os.Stdout, rep)
	}
}

// ---- Fig. 3 ----

func runFig3() {
	banner("Fig. 3: candidate MBR weights on the worked example (Fig. 1/2)")
	for _, mode := range []struct {
		label      string
		small8     bool
		incomplete bool
	}{
		{"incomplete 8-bit MBRs disabled", false, false},
		{"incomplete 8-bit MBRs enabled (example-sized 8-bit cell)", true, true},
	} {
		fmt.Printf("-- %s --\n", mode.label)
		d, regs, err := paperex.Design(mode.small8)
		if err != nil {
			fatal(err)
		}
		g := paperex.Graph(d, regs)
		opts := core.DefaultOptions()
		opts.AllowIncomplete = mode.incomplete
		infos, err := core.InspectCandidates(d, g, opts)
		if err != nil {
			fatal(err)
		}
		// Record names up front: merged members are removed from the design.
		instName := map[netlist.InstID]string{}
		d.Insts(func(in *netlist.Inst) { instName[in.ID] = in.Name })
		nameOf := func(ids []netlist.InstID) string {
			var ns []string
			for _, id := range ids {
				ns = append(ns, instName[id])
			}
			sort.Strings(ns)
			return strings.Join(ns, "")
		}
		sort.Slice(infos, func(i, j int) bool {
			if infos[i].Bits != infos[j].Bits {
				return infos[i].Bits < infos[j].Bits
			}
			return nameOf(infos[i].Members) < nameOf(infos[j].Members)
		})
		for _, ci := range infos {
			inc := ""
			if ci.Incomplete {
				inc = fmt.Sprintf("  (incomplete %d-bit cell)", ci.Width)
			}
			fmt.Printf("  %-5s bits=%d blockers=%d w=%.3f%s\n",
				nameOf(ci.Members), ci.Bits, ci.Blockers, ci.Weight, inc)
		}
		res, err := core.Compose(d, g, nil, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  ILP objective %.4f, registers %d -> %d, selected:",
			res.ObjectiveSum, res.RegsBefore, res.RegsAfter)
		for _, m := range res.MBRs {
			fmt.Printf(" %s", nameOf(m.Members))
		}
		fmt.Println()
	}
}

// ---- Fig. 5 ----

func runFig5(scale int) {
	banner("Fig. 5: MBR bit widths before & after composition")
	for _, spec := range bench.All(bench.ProfileOpts{Scale: scale}) {
		res, err := bench.Generate(spec)
		if err != nil {
			fatal(err)
		}
		before := core.BitWidthHistogram(res.Design)
		cfg := flow.DefaultConfig()
		cfg.Workers = workerCount
		if _, err := flow.Run(res.Design, res.Plan, cfg); err != nil {
			fatal(err)
		}
		report.Histogram(os.Stdout, spec.Name+" before:", before)
		report.Histogram(os.Stdout, spec.Name+" after:", core.BitWidthHistogram(res.Design))
		fmt.Println()
	}
}

// ---- Fig. 6 ----

func runFig6(scale int) {
	banner("Fig. 6: total registers, ILP vs maximal-clique/mapping heuristic")
	var rows []report.Fig6Row
	for _, spec := range bench.All(bench.ProfileOpts{Scale: scale}) {
		ilp := runFlow(spec, nil)
		greedy := runFlow(spec, func(cfg *flow.Config) {
			cfg.Compose.Method = core.MethodGreedy
		})
		rows = append(rows, report.Fig6Row{
			Design: spec.Name,
			Base:   ilp.Base.TotalRegs,
			ILP:    ilp.Ours.TotalRegs,
			Greedy: greedy.Ours.TotalRegs,
		})
	}
	report.Fig6(os.Stdout, rows)
}

// ---- Ablations ----

func runAblationBound(scale int) {
	banner("Ablation: subgraph node bound (§3 — paper reports a knee at 20-30)")
	spec := bench.D1(bench.ProfileOpts{Scale: scale})
	fmt.Printf("%6s %10s %12s %12s\n", "bound", "regsAfter", "candidates", "composeTime")
	for _, bound := range []int{10, 15, 20, 25, 30, 40, 50} {
		rep := runFlow(spec, func(cfg *flow.Config) {
			cfg.Compose.MaxSubgraphNodes = bound
		})
		fmt.Printf("%6d %10d %12d %12s\n",
			bound, rep.Ours.TotalRegs, rep.Compose.Candidates,
			rep.ComposeTime.Round(1e6))
	}
}

func runAblationWeights(scale int) {
	banner("Ablation: placement-aware weights (§3.2) on/off")
	fmt.Printf("%-6s %-9s %9s %9s %11s %11s\n",
		"design", "weights", "regsAfter", "ovflEdges", "WLtotal(mm)", "legalMoved")
	for _, spec := range bench.All(bench.ProfileOpts{Scale: scale}) {
		for _, useWeights := range []bool{true, false} {
			rep := runFlow(spec, func(cfg *flow.Config) {
				cfg.Compose.UseWeights = useWeights
			})
			fmt.Printf("%-6s %-9v %9d %9d %11.2f %11d\n",
				spec.Name, useWeights, rep.Ours.TotalRegs, rep.Ours.OverflowEdges,
				rep.Ours.WLClkMM+rep.Ours.WLSigMM, rep.Compose.LegalizationMoved)
		}
	}
}

func runAblationDecompose(scale int) {
	banner("Ablation: decompose existing max-width MBRs (§5 future work), D4 profile")
	spec := bench.D4(bench.ProfileOpts{Scale: scale})
	fmt.Printf("%-12s %9s %10s %9s %10s %10s\n",
		"mode", "regsAfter", "clkCap(pF)", "area", "decomposed", "restored")
	for _, decompose := range []bool{false, true} {
		label := "skip-8bit"
		if decompose {
			label = "decompose"
		}
		rep := runFlow(spec, func(cfg *flow.Config) {
			if decompose {
				cfg.Decompose = flow.DecomposeConfig{All: true}
			}
		})
		fmt.Printf("%-12s %9d %10.2f %9.0f %10d %10d\n",
			label, rep.Ours.TotalRegs, rep.Ours.ClkCapPF, rep.Ours.AreaUM2,
			rep.DecomposedMBRs, rep.RestoredMBRs)
	}
}

func runAblationIncomplete(scale int) {
	banner("Ablation: incomplete MBRs (admission rule sweep)")
	spec := bench.D2(bench.ProfileOpts{Scale: scale})
	fmt.Printf("%-22s %9s %10s %12s\n", "mode", "regsAfter", "incomplete", "area(um2)")
	type mode struct {
		label    string
		allow    bool
		overhead float64
	}
	for _, m := range []mode{
		{"disabled", false, 0},
		{"cap 5% (paper)", true, 0.05},
		{"cap 15%", true, 0.15},
		{"cap 30%", true, 0.30},
	} {
		rep := runFlow(spec, func(cfg *flow.Config) {
			cfg.Compose.AllowIncomplete = m.allow
			cfg.Compose.IncompleteAreaOverhead = m.overhead
		})
		fmt.Printf("%-22s %9d %10d %12.0f\n",
			m.label, rep.Ours.TotalRegs, rep.Compose.IncompleteMBRs, rep.Ours.AreaUM2)
	}
}
