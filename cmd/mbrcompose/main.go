// Command mbrcompose runs the full Fig. 4 flow — base measurement, MBR
// composition, useful skew, MBR sizing, CTS rebuild, final measurement — on
// a design and prints a Table 1-style row pair.
//
// The design comes either from a JSON file produced by benchgen or from a
// built-in profile:
//
//	mbrcompose -profile D1 -scale 20
//	mbrcompose -design d1.json -scan d1.scan.json
//	mbrcompose -profile D2 -method greedy -noweights -noincomplete
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/scan"
)

func main() {
	var (
		profile      = flag.String("profile", "", "built-in profile: D1..D5")
		scale        = flag.Int("scale", bench.DefaultScale, "profile scale divisor")
		designPath   = flag.String("design", "", "design JSON (alternative to -profile)")
		scanPath     = flag.String("scan", "", "scan plan JSON (with -design)")
		method       = flag.String("method", "ilp", "composition method: ilp | greedy")
		noWeights    = flag.Bool("noweights", false, "disable the placement-aware weights (§3.2)")
		noIncomplete = flag.Bool("noincomplete", false, "disallow incomplete MBRs")
		bound        = flag.Int("bound", 30, "max subgraph nodes (§3 partition bound)")
		noSkew       = flag.Bool("noskew", false, "skip useful-skew assignment")
		noSizing     = flag.Bool("nosizing", false, "skip MBR sizing")
		fig5         = flag.Bool("fig5", false, "also print the bit-width histograms (Fig. 5)")
		workers      = flag.Int("workers", 0, "composition worker count (0 = GOMAXPROCS, 1 = sequential; results are identical)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var (
		d    *netlist.Design
		plan *scan.Plan
	)
	switch {
	case *designPath != "":
		f, err := os.Open(*designPath)
		if err != nil {
			fatal(err)
		}
		d, err = netlist.ReadJSON(f, lib.MustGenerateDefault())
		f.Close()
		if err != nil {
			fatal(err)
		}
		plan = scan.NewPlan()
		if *scanPath != "" {
			sf, err := os.Open(*scanPath)
			if err != nil {
				fatal(err)
			}
			plan, err = scan.ReadJSON(sf, d)
			sf.Close()
			if err != nil {
				fatal(err)
			}
		}
	case *profile != "":
		spec, err := profileSpec(*profile, *scale)
		if err != nil {
			fatal(err)
		}
		res, err := bench.Generate(spec)
		if err != nil {
			fatal(err)
		}
		d, plan = res.Design, res.Plan
	default:
		fmt.Fprintln(os.Stderr, "need -profile or -design")
		os.Exit(2)
	}

	cfg := flow.DefaultConfig()
	if *method == "greedy" {
		cfg.Compose.Method = core.MethodGreedy
	}
	cfg.Compose.UseWeights = !*noWeights
	cfg.Compose.AllowIncomplete = !*noIncomplete
	cfg.Compose.MaxSubgraphNodes = *bound
	cfg.UsefulSkew = !*noSkew
	cfg.Sizing = !*noSizing
	cfg.Workers = *workers

	before := core.BitWidthHistogram(d)
	rep, err := flow.Run(d, plan, cfg)
	if err != nil {
		fatal(err)
	}
	report.Table1Header(os.Stdout)
	report.Table1Rows(os.Stdout, rep)
	fmt.Printf("\ncomposed %d MBRs (%d incomplete), %d candidates over %d subgraphs, %d B&B nodes, skewed %d, resized %d\n",
		len(rep.Compose.MBRs), rep.Compose.IncompleteMBRs, rep.Compose.Candidates,
		rep.Compose.Subgraphs, rep.Compose.ILPNodes, rep.SkewedMBRs, rep.ResizedMBRs)
	if *fig5 {
		fmt.Println()
		report.Histogram(os.Stdout, "Register bit widths before composition:", before)
		report.Histogram(os.Stdout, "Register bit widths after composition:", core.BitWidthHistogram(d))
	}
}

func profileSpec(name string, scale int) (bench.Spec, error) {
	o := bench.ProfileOpts{Scale: scale}
	switch name {
	case "D1":
		return bench.D1(o), nil
	case "D2":
		return bench.D2(o), nil
	case "D3":
		return bench.D3(o), nil
	case "D4":
		return bench.D4(o), nil
	case "D5":
		return bench.D5(o), nil
	}
	return bench.Spec{}, fmt.Errorf("unknown profile %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
