// Command mbrstats reports the composition-relevant statistics of a design:
// register counts by width and class, compatibility graph size and exclusion
// reasons, clock domain population, scan chain shapes, timing summary, and
// clock network metrics. The default run does not modify the design;
// -passes N additionally runs N composition passes on the in-memory copy
// and reports, per pass, what the retained incremental compatibility-graph
// engine did (node/edge counts, connected components, delta-vs-rebuild
// decision, edges re-tested), what the retained compose engine did
// (subgraphs replayed from the solve memo vs solved fresh, truncated
// subgraphs, branch & bound nodes saved, warm-start and root-tightening
// activity), and what the retained clock-tree engine did to fold the
// merges into its live trees (re-clustered leaves, repaired ancestors,
// buffer churn, fallback reason).
//
//	mbrstats -profile D1
//	mbrstats -profile D1 -passes 3
//	mbrstats -design d1.json -scan d1.scan.json
//	benchgen -profile D3 -out /dev/stdout | mbrstats -design /dev/stdin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/compatgraph"
	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/scan"
	"repro/internal/sta"
)

func main() {
	var (
		profile    = flag.String("profile", "", "built-in profile: D1..D5")
		scale      = flag.Int("scale", bench.DefaultScale, "profile scale divisor")
		designPath = flag.String("design", "", "design JSON (alternative to -profile)")
		scanPath   = flag.String("scan", "", "scan plan JSON (with -design)")
		passes     = flag.Int("passes", 0, "run this many composition passes and report per-pass compat-graph deltas")
	)
	flag.Parse()

	var (
		d    *netlist.Design
		plan *scan.Plan
	)
	switch {
	case *designPath != "":
		f, err := os.Open(*designPath)
		if err != nil {
			fatal(err)
		}
		d, err = netlist.ReadJSON(f, lib.MustGenerateDefault())
		f.Close()
		if err != nil {
			fatal(err)
		}
		plan = scan.NewPlan()
		if *scanPath != "" {
			sf, err := os.Open(*scanPath)
			if err != nil {
				fatal(err)
			}
			plan, err = scan.ReadJSON(sf, d)
			sf.Close()
			if err != nil {
				fatal(err)
			}
		}
	case *profile != "":
		o := bench.ProfileOpts{Scale: *scale}
		var spec bench.Spec
		switch *profile {
		case "D1":
			spec = bench.D1(o)
		case "D2":
			spec = bench.D2(o)
		case "D3":
			spec = bench.D3(o)
		case "D4":
			spec = bench.D4(o)
		case "D5":
			spec = bench.D5(o)
		default:
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		res, err := bench.Generate(spec)
		if err != nil {
			fatal(err)
		}
		d, plan = res.Design, res.Plan
	default:
		fmt.Fprintln(os.Stderr, "need -profile or -design")
		os.Exit(2)
	}

	fmt.Printf("design %s\n", d.Name)
	fmt.Printf("  core %v, %d instances, %d nets, area %.0f µm²\n",
		d.Core, d.NumInsts(), d.NumNets(), float64(d.TotalArea())/1e6)

	// Registers by width and class.
	regs := d.Registers()
	byWidth := map[int]int{}
	byClass := map[string]int{}
	for _, r := range regs {
		byWidth[r.Bits()]++
		byClass[r.RegCell.Class.Key()]++
	}
	fmt.Printf("\nregisters: %d total\n", len(regs))
	var widths []int
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	for _, w := range widths {
		fmt.Printf("  %d-bit: %d\n", w, byWidth[w])
	}
	var classes []string
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Println("by functional class:")
	for _, c := range classes {
		fmt.Printf("  %-40s %d\n", c, byClass[c])
	}

	// Timing + compatibility.
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntiming (ideal clocks, period %.0f ps):\n", d.Timing.ClockPeriod)
	fmt.Printf("  WNS %.1f ps, TNS %.2f ns, failing %d / %d endpoints\n",
		res.WNS, -res.TNS/1000, res.FailingEndpoints, res.TotalEndpoints)

	cg := compatgraph.New(d, plan, compatgraph.Options{Compat: compat.DefaultOptions()})
	cg.SetTimingFeed(eng)
	g := cg.Update(res)
	cg.Subgraphs(30)
	st := g.Stats()
	cs := cg.Stats()
	fmt.Printf("\ncompatibility graph: %d composable of %d registers, %d edges, %d components\n",
		st.ComposableRegs, st.TotalRegs, st.Edges, cs.LastComponents)
	var reasons []string
	for why := range st.ExcludedByWhy {
		reasons = append(reasons, string(why))
	}
	sort.Strings(reasons)
	for _, why := range reasons {
		fmt.Printf("  excluded (%s): %d\n", why, st.ExcludedByWhy[compat.NotComposableReason(why)])
	}

	// Clock domains.
	fmt.Println("\nclock domains:")
	domains := map[netlist.NetID]int{}
	for _, r := range regs {
		domains[d.ClockNet(r)]++
	}
	var domIDs []netlist.NetID
	for id := range domains {
		domIDs = append(domIDs, id)
	}
	sort.Slice(domIDs, func(i, j int) bool { return domIDs[i] < domIDs[j] })
	for _, id := range domIDs {
		name := "<unclocked>"
		if n := d.Net(id); n != nil {
			name = n.Name
		}
		fmt.Printf("  %-16s %d sinks\n", name, domains[id])
	}
	cm := cts.Measure(d)
	fmt.Printf("clock network: %d buffers, %.2f pF, %.2f mm\n",
		cm.Buffers, cm.TotalCapFF/1000, float64(cm.WirelengthDBU)/1e6)

	// Scan chains.
	if chains := plan.Chains(); len(chains) > 0 {
		fmt.Printf("\nscan: %d chains\n", len(chains))
		for _, c := range chains {
			ord := ""
			if c.Ordered {
				ord = " (ordered)"
			}
			fmt.Printf("  chain %d: partition %d, %d registers%s\n",
				c.ID, c.Partition, len(c.Regs), ord)
		}
	}

	// Congestion.
	m := route.Estimate(d, route.DefaultOptions())
	fmt.Printf("\ncongestion: %d overflow edges, max util %.2f, avg util %.2f\n",
		m.OverflowEdges(), m.MaxUtilization(), m.AvgUtilization())

	if *passes > 0 {
		runPasses(d, plan, eng, cg, *passes)
	}
}

// runPasses drives composition passes on the in-memory design, reporting
// what the retained compatibility-graph, clock-tree and congestion engines
// do on each one.
func runPasses(d *netlist.Design, plan *scan.Plan, eng *sta.Engine, cg *compatgraph.Engine, passes int) {
	ct := cts.NewEngine(d, cts.DefaultOptions())
	if err := ct.Attach(); err != nil {
		fatal(err)
	}
	rt := route.NewEngine(d, route.DefaultOptions())
	rt.Update() // baseline estimate, so pass deltas measure only the edits
	ce := core.NewEngine(d)
	fmt.Printf("\ncomposition passes (retained compat + compose + clock-tree + congestion engines):\n")
	for p := 1; p <= passes; p++ {
		res, err := eng.Run()
		if err != nil {
			fatal(err)
		}
		g := cg.Update(res)
		subs, hints := cg.SubgraphsHinted(30)
		cs := cg.Stats()
		fmt.Printf("pass %d: %d nodes, %d edges, %d components (%d splits reused)\n",
			p, cs.LastNodes, cs.LastEdges, cs.LastComponents, cs.LastComponentsReused)
		fmt.Printf("  update: %s  (+%d nodes, -%d nodes, %d dirty)\n",
			cs.LastKind, cs.LastNodesAdded, cs.LastNodesRemoved, cs.LastNodesDirty)
		fmt.Printf("  pairs tested %d (edges re-tested %d); rejected by func/scan/place/timing: %d/%d/%d/%d\n",
			cs.LastPairsTested, cs.LastEdgesRetested,
			cs.LastRejectsByTest[0], cs.LastRejectsByTest[1],
			cs.LastRejectsByTest[2], cs.LastRejectsByTest[3])
		fmt.Printf("  phases: node %s (%d visited, %.2f ms), edges %.2f ms\n",
			cs.LastNodePhase, cs.LastNodesVisited,
			float64(cs.LastNodePhaseNS)/1e6, float64(cs.LastEdgePhaseNS)/1e6)
		opts := core.DefaultOptions()
		opts.NamePrefix = fmt.Sprintf("mbrp%d", p)
		opts.ReleaseClocks = ct.ReleaseClocks
		esBefore := ce.Stats()
		cres, err := ce.Compose(g, plan, subs, hints, opts)
		if err != nil {
			fatal(err)
		}
		es := ce.Stats()
		fmt.Printf("  composed: %d MBRs, registers %d -> %d (%d truncated subgraphs)\n",
			len(cres.MBRs), cres.RegsBefore, cres.RegsAfter, cres.TruncatedSubgraphs)
		fmt.Printf("  compose %s: %d subgraphs replayed, %d solved fresh, %d B&B nodes saved (hints %d clean, %d missed)\n",
			ce.Summary().LastKind,
			es.SubgraphsReused-esBefore.SubgraphsReused,
			es.SubgraphsSolved-esBefore.SubgraphsSolved,
			es.ILPNodesSaved-esBefore.ILPNodesSaved,
			es.HintedClean-esBefore.HintedClean,
			es.HintMisses-esBefore.HintMisses)
		fmt.Printf("  compose warm: %d seeded, %d accepted, %d retried; %d columns tighten-pruned\n",
			es.WarmSeeded-esBefore.WarmSeeded,
			es.WarmAccepted-esBefore.WarmAccepted,
			es.WarmRetried-esBefore.WarmRetried,
			es.TightenPruned-esBefore.TightenPruned)
		if err := ct.Update(); err != nil {
			fatal(err)
		}
		ts := ct.Stats()
		line := fmt.Sprintf("  cts %s: %d leaves re-clustered, %d ancestors repaired, %d clusters reused, buffers +%d/-%d",
			ts.LastKind, ts.LastReclusteredLeaves, ts.LastRepairedAncestors,
			ts.LastReusedClusters, ts.LastBuffersAdded, ts.LastBuffersRemoved)
		if ts.LastFallbackReason != "" {
			line += fmt.Sprintf(" (fallback: %s)", ts.LastFallbackReason)
		}
		fmt.Println(line)
		fmt.Printf("  cts phases: plan %.2f ms, repair %.2f ms, legalize %.2f ms\n",
			float64(ts.LastPlanNS)/1e6, float64(ts.LastRepairNS)/1e6,
			float64(ts.LastLegalizeNS)/1e6)
		pm := ct.Metrics()
		ts = ct.Stats()
		fmt.Printf("  clock network (cached): %d buffers, %.2f pF, %.2f mm (%d metric fallbacks)\n",
			pm.Buffers, pm.TotalCapFF/1000, float64(pm.WirelengthDBU)/1e6,
			ts.MetricsFallbacks)
		overflow := rt.OverflowEdges()
		rs := rt.Stats()
		rline := fmt.Sprintf("  route %s: %d overflow edges, %d nets re-contributed, %d grid edges touched",
			rs.LastKind, overflow, rs.LastNetsDelta, rs.LastTilesTouched)
		if rs.LastKind == "rebuild" && rs.LastFallback != "" {
			rline += fmt.Sprintf(" (fallback: %s)", rs.LastFallback)
		}
		fmt.Println(rline)
		fmt.Printf("  route phases: delta %.2f ms, rebuild %.2f ms\n",
			float64(rs.LastDeltaNS)/1e6, float64(rs.LastRebuildNS)/1e6)
		if len(cres.MBRs) == 0 {
			fmt.Printf("  converged after %d passes (delta/rebuild decisions: %d/%d)\n",
				p, cs.Deltas, cs.Rebuilds)
			return
		}
	}
	cs := cg.Stats()
	ts := ct.Stats()
	rs := rt.Stats()
	es := ce.Stats()
	fmt.Printf("  totals: compat %d updates (%d delta, %d full); compose %d rounds (%d/%d subgraphs replayed, %d nodes saved); cts %d updates (%d delta, %d rebuilds, %d clean); route %d updates (%d delta, %d rebuilds, %d clean)\n",
		cs.Updates, cs.Deltas, cs.Rebuilds,
		es.Rounds, es.SubgraphsReused, es.SubgraphsSeen, es.ILPNodesSaved,
		ts.Updates, ts.Deltas, ts.Rebuilds, ts.Cleans,
		rs.Updates, rs.Deltas, rs.Rebuilds, rs.Cleans)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
