// Command mbrstats reports the composition-relevant statistics of a design
// without modifying it: register counts by width and class, compatibility
// graph size and exclusion reasons, clock domain population, scan chain
// shapes, timing summary, and clock network metrics.
//
//	mbrstats -profile D1
//	mbrstats -design d1.json -scan d1.scan.json
//	benchgen -profile D3 -out /dev/stdout | mbrstats -design /dev/stdin
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/cts"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/scan"
	"repro/internal/sta"
)

func main() {
	var (
		profile    = flag.String("profile", "", "built-in profile: D1..D5")
		scale      = flag.Int("scale", bench.DefaultScale, "profile scale divisor")
		designPath = flag.String("design", "", "design JSON (alternative to -profile)")
		scanPath   = flag.String("scan", "", "scan plan JSON (with -design)")
	)
	flag.Parse()

	var (
		d    *netlist.Design
		plan *scan.Plan
	)
	switch {
	case *designPath != "":
		f, err := os.Open(*designPath)
		if err != nil {
			fatal(err)
		}
		d, err = netlist.ReadJSON(f, lib.MustGenerateDefault())
		f.Close()
		if err != nil {
			fatal(err)
		}
		plan = scan.NewPlan()
		if *scanPath != "" {
			sf, err := os.Open(*scanPath)
			if err != nil {
				fatal(err)
			}
			plan, err = scan.ReadJSON(sf, d)
			sf.Close()
			if err != nil {
				fatal(err)
			}
		}
	case *profile != "":
		o := bench.ProfileOpts{Scale: *scale}
		var spec bench.Spec
		switch *profile {
		case "D1":
			spec = bench.D1(o)
		case "D2":
			spec = bench.D2(o)
		case "D3":
			spec = bench.D3(o)
		case "D4":
			spec = bench.D4(o)
		case "D5":
			spec = bench.D5(o)
		default:
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		res, err := bench.Generate(spec)
		if err != nil {
			fatal(err)
		}
		d, plan = res.Design, res.Plan
	default:
		fmt.Fprintln(os.Stderr, "need -profile or -design")
		os.Exit(2)
	}

	fmt.Printf("design %s\n", d.Name)
	fmt.Printf("  core %v, %d instances, %d nets, area %.0f µm²\n",
		d.Core, d.NumInsts(), d.NumNets(), float64(d.TotalArea())/1e6)

	// Registers by width and class.
	regs := d.Registers()
	byWidth := map[int]int{}
	byClass := map[string]int{}
	for _, r := range regs {
		byWidth[r.Bits()]++
		byClass[r.RegCell.Class.Key()]++
	}
	fmt.Printf("\nregisters: %d total\n", len(regs))
	var widths []int
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	for _, w := range widths {
		fmt.Printf("  %d-bit: %d\n", w, byWidth[w])
	}
	var classes []string
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Println("by functional class:")
	for _, c := range classes {
		fmt.Printf("  %-40s %d\n", c, byClass[c])
	}

	// Timing + compatibility.
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\ntiming (ideal clocks, period %.0f ps):\n", d.Timing.ClockPeriod)
	fmt.Printf("  WNS %.1f ps, TNS %.2f ns, failing %d / %d endpoints\n",
		res.WNS, -res.TNS/1000, res.FailingEndpoints, res.TotalEndpoints)

	g := compat.Build(d, res, plan, compat.DefaultOptions())
	st := g.Stats()
	fmt.Printf("\ncompatibility graph: %d composable of %d registers, %d edges\n",
		st.ComposableRegs, st.TotalRegs, st.Edges)
	var reasons []string
	for why := range st.ExcludedByWhy {
		reasons = append(reasons, string(why))
	}
	sort.Strings(reasons)
	for _, why := range reasons {
		fmt.Printf("  excluded (%s): %d\n", why, st.ExcludedByWhy[compat.NotComposableReason(why)])
	}

	// Clock domains.
	fmt.Println("\nclock domains:")
	domains := map[netlist.NetID]int{}
	for _, r := range regs {
		domains[d.ClockNet(r)]++
	}
	var domIDs []netlist.NetID
	for id := range domains {
		domIDs = append(domIDs, id)
	}
	sort.Slice(domIDs, func(i, j int) bool { return domIDs[i] < domIDs[j] })
	for _, id := range domIDs {
		name := "<unclocked>"
		if n := d.Net(id); n != nil {
			name = n.Name
		}
		fmt.Printf("  %-16s %d sinks\n", name, domains[id])
	}
	cm := cts.Measure(d)
	fmt.Printf("clock network: %d buffers, %.2f pF, %.2f mm\n",
		cm.Buffers, cm.TotalCapFF/1000, float64(cm.WirelengthDBU)/1e6)

	// Scan chains.
	if chains := plan.Chains(); len(chains) > 0 {
		fmt.Printf("\nscan: %d chains\n", len(chains))
		for _, c := range chains {
			ord := ""
			if c.Ordered {
				ord = " (ordered)"
			}
			fmt.Printf("  chain %d: partition %d, %d registers%s\n",
				c.ID, c.Partition, len(c.Regs), ord)
		}
	}

	// Congestion.
	m := route.Estimate(d, route.DefaultOptions())
	fmt.Printf("\ncongestion: %d overflow edges, max util %.2f, avg util %.2f\n",
		m.OverflowEdges(), m.MaxUtilization(), m.AvgUtilization())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
