// Command mbrstats reports the composition-relevant statistics of a design:
// register counts by width and class, compatibility graph size and exclusion
// reasons, clock domain population, scan chain shapes, timing summary, and
// clock network metrics. The default run does not modify the design;
// -passes N additionally runs N composition passes on the in-memory copy
// and reports, per pass, what the retained incremental compatibility-graph
// engine did (node/edge counts, connected components, delta-vs-rebuild
// decision, edges re-tested), what the retained compose engine did
// (subgraphs replayed from the solve memo vs solved fresh, truncated
// subgraphs, branch & bound nodes saved, warm-start and root-tightening
// activity), and what the retained clock-tree engine did to fold the
// merges into its live trees (re-clustered leaves, repaired ancestors,
// buffer churn, fallback reason).
//
// -json emits the same report as one JSON document using the wire package's
// encodings (internal/serve/wire), so a report scraped from this tool parses
// exactly like the composition server's responses: per-pass stats are
// wire.PassStats, engine counters are wire.EngineSummaries.
//
//	mbrstats -profile D1
//	mbrstats -profile D1 -passes 3
//	mbrstats -profile D2 -passes 3 -json | jq .passes[0].updateKind
//	mbrstats -design d1.json -scan d1.scan.json
//	benchgen -profile D3 -out /dev/stdout | mbrstats -design /dev/stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/compatgraph"
	"repro/internal/core"
	"repro/internal/cts"
	"repro/internal/engine"
	"repro/internal/lib"
	"repro/internal/netlist"
	"repro/internal/route"
	"repro/internal/scan"
	"repro/internal/serve/wire"
	"repro/internal/sta"
)

// report is the -json document. The sections mirror the text report; the
// pass and engine shapes are shared with the composition server.
type report struct {
	Design     designReport         `json:"design"`
	Registers  registersReport      `json:"registers"`
	Timing     timingReport         `json:"timing"`
	Compat     compatReport         `json:"compat"`
	Clock      clockReport          `json:"clock"`
	Scan       []chainReport        `json:"scan,omitempty"`
	Congestion congestionReport     `json:"congestion"`
	Passes     []wire.PassStats     `json:"passes,omitempty"`
	Engines    wire.EngineSummaries `json:"engines,omitempty"`
}

type designReport struct {
	Name      string  `json:"name"`
	Instances int     `json:"instances"`
	Nets      int     `json:"nets"`
	AreaUM2   float64 `json:"areaUM2"`
}

type registersReport struct {
	Total   int            `json:"total"`
	ByWidth map[int]int    `json:"byWidth"`
	ByClass map[string]int `json:"byClass"`
}

type timingReport struct {
	ClockPeriodPS    float64 `json:"clockPeriodPS"`
	WNSPS            float64 `json:"wnsPS"`
	TNSNS            float64 `json:"tnsNS"`
	FailingEndpoints int     `json:"failingEndpoints"`
	TotalEndpoints   int     `json:"totalEndpoints"`
}

type compatReport struct {
	ComposableRegs int            `json:"composableRegs"`
	TotalRegs      int            `json:"totalRegs"`
	Edges          int            `json:"edges"`
	Components     int            `json:"components"`
	Excluded       map[string]int `json:"excluded,omitempty"`
}

type clockReport struct {
	Domains      []domainReport `json:"domains"`
	Buffers      int            `json:"buffers"`
	CapPF        float64        `json:"capPF"`
	WirelengthMM float64        `json:"wirelengthMM"`
}

type domainReport struct {
	Net   string `json:"net"`
	Sinks int    `json:"sinks"`
}

type chainReport struct {
	ID        int  `json:"id"`
	Partition int  `json:"partition"`
	Regs      int  `json:"regs"`
	Ordered   bool `json:"ordered"`
}

type congestionReport struct {
	OverflowEdges  int     `json:"overflowEdges"`
	MaxUtilization float64 `json:"maxUtilization"`
	AvgUtilization float64 `json:"avgUtilization"`
}

func main() {
	var (
		profile    = flag.String("profile", "", "built-in profile: D1..D5")
		scale      = flag.Int("scale", bench.DefaultScale, "profile scale divisor")
		designPath = flag.String("design", "", "design JSON (alternative to -profile)")
		scanPath   = flag.String("scan", "", "scan plan JSON (with -design)")
		passes     = flag.Int("passes", 0, "run this many composition passes and report per-pass compat-graph deltas")
		jsonOut    = flag.Bool("json", false, "emit one JSON document (wire encodings) instead of text")
	)
	flag.Parse()

	var (
		d    *netlist.Design
		plan *scan.Plan
	)
	switch {
	case *designPath != "":
		f, err := os.Open(*designPath)
		if err != nil {
			fatal(err)
		}
		d, err = netlist.ReadJSON(f, lib.MustGenerateDefault())
		f.Close()
		if err != nil {
			fatal(err)
		}
		plan = scan.NewPlan()
		if *scanPath != "" {
			sf, err := os.Open(*scanPath)
			if err != nil {
				fatal(err)
			}
			plan, err = scan.ReadJSON(sf, d)
			sf.Close()
			if err != nil {
				fatal(err)
			}
		}
	case *profile != "":
		spec, ok := bench.ProfileByName(*profile, bench.ProfileOpts{Scale: *scale})
		if !ok {
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		res, err := bench.Generate(spec)
		if err != nil {
			fatal(err)
		}
		d, plan = res.Design, res.Plan
	default:
		fmt.Fprintln(os.Stderr, "need -profile or -design")
		os.Exit(2)
	}

	text := !*jsonOut
	rep := report{Design: designReport{
		Name:      d.Name,
		Instances: d.NumInsts(),
		Nets:      d.NumNets(),
		AreaUM2:   float64(d.TotalArea()) / 1e6,
	}}
	if text {
		fmt.Printf("design %s\n", d.Name)
		fmt.Printf("  core %v, %d instances, %d nets, area %.0f µm²\n",
			d.Core, d.NumInsts(), d.NumNets(), rep.Design.AreaUM2)
	}

	// Registers by width and class.
	regs := d.Registers()
	byWidth := map[int]int{}
	byClass := map[string]int{}
	for _, r := range regs {
		byWidth[r.Bits()]++
		byClass[r.RegCell.Class.Key()]++
	}
	rep.Registers = registersReport{Total: len(regs), ByWidth: byWidth, ByClass: byClass}
	if text {
		fmt.Printf("\nregisters: %d total\n", len(regs))
		var widths []int
		for w := range byWidth {
			widths = append(widths, w)
		}
		sort.Ints(widths)
		for _, w := range widths {
			fmt.Printf("  %d-bit: %d\n", w, byWidth[w])
		}
		var classes []string
		for c := range byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Println("by functional class:")
		for _, c := range classes {
			fmt.Printf("  %-40s %d\n", c, byClass[c])
		}
	}

	// Timing + compatibility.
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	res, err := eng.Run()
	if err != nil {
		fatal(err)
	}
	rep.Timing = timingReport{
		ClockPeriodPS:    d.Timing.ClockPeriod,
		WNSPS:            res.WNS,
		TNSNS:            -res.TNS / 1000,
		FailingEndpoints: res.FailingEndpoints,
		TotalEndpoints:   res.TotalEndpoints,
	}
	if text {
		fmt.Printf("\ntiming (ideal clocks, period %.0f ps):\n", d.Timing.ClockPeriod)
		fmt.Printf("  WNS %.1f ps, TNS %.2f ns, failing %d / %d endpoints\n",
			res.WNS, -res.TNS/1000, res.FailingEndpoints, res.TotalEndpoints)
	}

	cg := compatgraph.New(d, plan, compatgraph.Options{Compat: compat.DefaultOptions()})
	cg.SetTimingFeed(eng)
	g := cg.Update(res)
	cg.Subgraphs(30)
	st := g.Stats()
	cs := cg.Stats()
	excluded := map[string]int{}
	for why, n := range st.ExcludedByWhy {
		excluded[string(why)] = n
	}
	rep.Compat = compatReport{
		ComposableRegs: st.ComposableRegs,
		TotalRegs:      st.TotalRegs,
		Edges:          st.Edges,
		Components:     cs.LastComponents,
		Excluded:       excluded,
	}
	if text {
		fmt.Printf("\ncompatibility graph: %d composable of %d registers, %d edges, %d components\n",
			st.ComposableRegs, st.TotalRegs, st.Edges, cs.LastComponents)
		var reasons []string
		for why := range excluded {
			reasons = append(reasons, why)
		}
		sort.Strings(reasons)
		for _, why := range reasons {
			fmt.Printf("  excluded (%s): %d\n", why, excluded[why])
		}
	}

	// Clock domains.
	domains := map[netlist.NetID]int{}
	for _, r := range regs {
		domains[d.ClockNet(r)]++
	}
	var domIDs []netlist.NetID
	for id := range domains {
		domIDs = append(domIDs, id)
	}
	sort.Slice(domIDs, func(i, j int) bool { return domIDs[i] < domIDs[j] })
	cm := cts.Measure(d)
	rep.Clock = clockReport{
		Buffers:      cm.Buffers,
		CapPF:        cm.TotalCapFF / 1000,
		WirelengthMM: float64(cm.WirelengthDBU) / 1e6,
	}
	if text {
		fmt.Println("\nclock domains:")
	}
	for _, id := range domIDs {
		name := "<unclocked>"
		if n := d.Net(id); n != nil {
			name = n.Name
		}
		rep.Clock.Domains = append(rep.Clock.Domains, domainReport{Net: name, Sinks: domains[id]})
		if text {
			fmt.Printf("  %-16s %d sinks\n", name, domains[id])
		}
	}
	if text {
		fmt.Printf("clock network: %d buffers, %.2f pF, %.2f mm\n",
			cm.Buffers, cm.TotalCapFF/1000, float64(cm.WirelengthDBU)/1e6)
	}

	// Scan chains.
	if chains := plan.Chains(); len(chains) > 0 {
		if text {
			fmt.Printf("\nscan: %d chains\n", len(chains))
		}
		for _, c := range chains {
			rep.Scan = append(rep.Scan, chainReport{
				ID: c.ID, Partition: c.Partition, Regs: len(c.Regs), Ordered: c.Ordered,
			})
			if text {
				ord := ""
				if c.Ordered {
					ord = " (ordered)"
				}
				fmt.Printf("  chain %d: partition %d, %d registers%s\n",
					c.ID, c.Partition, len(c.Regs), ord)
			}
		}
	}

	// Congestion.
	m := route.Estimate(d, route.DefaultOptions())
	rep.Congestion = congestionReport{
		OverflowEdges:  m.OverflowEdges(),
		MaxUtilization: m.MaxUtilization(),
		AvgUtilization: m.AvgUtilization(),
	}
	if text {
		fmt.Printf("\ncongestion: %d overflow edges, max util %.2f, avg util %.2f\n",
			m.OverflowEdges(), m.MaxUtilization(), m.AvgUtilization())
	}

	if *passes > 0 {
		rep.Passes, rep.Engines = runPasses(d, plan, eng, cg, *passes, text)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.SetEscapeHTML(false)
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

// runPasses drives composition passes on the in-memory design, reporting
// what the retained compatibility-graph, clock-tree and congestion engines
// do on each one. It returns per-pass wire.PassStats and the final engine
// summaries, so -json reports parse like the composition server's.
func runPasses(d *netlist.Design, plan *scan.Plan, eng *sta.Engine, cg *compatgraph.Engine, passes int, text bool) ([]wire.PassStats, wire.EngineSummaries) {
	ct := cts.NewEngine(d, cts.DefaultOptions())
	if err := ct.Attach(); err != nil {
		fatal(err)
	}
	rt := route.NewEngine(d, route.DefaultOptions())
	rt.Update() // baseline estimate, so pass deltas measure only the edits
	ce := core.NewEngine(d)
	var out []wire.PassStats
	if text {
		fmt.Printf("\ncomposition passes (retained compat + compose + clock-tree + congestion engines):\n")
	}
	for p := 1; p <= passes; p++ {
		res, err := eng.Run()
		if err != nil {
			fatal(err)
		}
		g := cg.Update(res)
		subs, hints := cg.SubgraphsHinted(30)
		cs := cg.Stats()
		ps := wire.PassStats{
			Pass:          p,
			Nodes:         cs.LastNodes,
			Edges:         cs.LastEdges,
			Components:    cs.LastComponents,
			UpdateKind:    string(cs.LastKind),
			NodesAdded:    cs.LastNodesAdded,
			NodesRemoved:  cs.LastNodesRemoved,
			NodesDirty:    cs.LastNodesDirty,
			PairsTested:   cs.LastPairsTested,
			EdgesRetested: cs.LastEdgesRetested,
		}
		if text {
			fmt.Printf("pass %d: %d nodes, %d edges, %d components (%d splits reused)\n",
				p, cs.LastNodes, cs.LastEdges, cs.LastComponents, cs.LastComponentsReused)
			fmt.Printf("  update: %s  (+%d nodes, -%d nodes, %d dirty)\n",
				cs.LastKind, cs.LastNodesAdded, cs.LastNodesRemoved, cs.LastNodesDirty)
			fmt.Printf("  pairs tested %d (edges re-tested %d); rejected by func/scan/place/timing: %d/%d/%d/%d\n",
				cs.LastPairsTested, cs.LastEdgesRetested,
				cs.LastRejectsByTest[0], cs.LastRejectsByTest[1],
				cs.LastRejectsByTest[2], cs.LastRejectsByTest[3])
			fmt.Printf("  phases: node %s (%d visited, %.2f ms), edges %.2f ms\n",
				cs.LastNodePhase, cs.LastNodesVisited,
				float64(cs.LastNodePhaseNS)/1e6, float64(cs.LastEdgePhaseNS)/1e6)
		}
		opts := core.DefaultOptions()
		opts.NamePrefix = fmt.Sprintf("mbrp%d", p)
		opts.ReleaseClocks = ct.ReleaseClocks
		esBefore := ce.Stats()
		cres, err := ce.Compose(g, plan, subs, hints, opts)
		if err != nil {
			fatal(err)
		}
		es := ce.Stats()
		ps.MBRs = len(cres.MBRs)
		ps.RegsBefore = cres.RegsBefore
		ps.RegsAfter = cres.RegsAfter
		ps.TruncatedSubgraphs = cres.TruncatedSubgraphs
		ps.ComposeKind = ce.Summary().LastKind
		ps.SubgraphsReplayed = es.SubgraphsReused - esBefore.SubgraphsReused
		ps.SubgraphsSolved = es.SubgraphsSolved - esBefore.SubgraphsSolved
		ps.ILPNodesSaved = es.ILPNodesSaved - esBefore.ILPNodesSaved
		ps.WarmSeeded = es.WarmSeeded - esBefore.WarmSeeded
		ps.WarmAccepted = es.WarmAccepted - esBefore.WarmAccepted
		ps.WarmRetried = es.WarmRetried - esBefore.WarmRetried
		ps.TightenPruned = es.TightenPruned - esBefore.TightenPruned
		ps.SchedShards = es.SchedShards - esBefore.SchedShards
		ps.SchedSteals = es.SchedSteals - esBefore.SchedSteals
		if text {
			fmt.Printf("  composed: %d MBRs, registers %d -> %d (%d truncated subgraphs)\n",
				len(cres.MBRs), cres.RegsBefore, cres.RegsAfter, cres.TruncatedSubgraphs)
			fmt.Printf("  compose %s: %d subgraphs replayed, %d solved fresh, %d B&B nodes saved (hints %d clean, %d missed)\n",
				ps.ComposeKind, ps.SubgraphsReplayed, ps.SubgraphsSolved, ps.ILPNodesSaved,
				es.HintedClean-esBefore.HintedClean,
				es.HintMisses-esBefore.HintMisses)
			fmt.Printf("  compose warm: %d seeded, %d accepted, %d retried; %d columns tighten-pruned\n",
				ps.WarmSeeded, ps.WarmAccepted, ps.WarmRetried, ps.TightenPruned)
			fmt.Printf("  compose sched: %d shards scheduled, %d stolen (workers %d)\n",
				ps.SchedShards, ps.SchedSteals, cres.Workers)
		}
		if err := ct.Update(); err != nil {
			fatal(err)
		}
		ts := ct.Stats()
		ps.CTSKind = string(ts.LastKind)
		ps.ReclusteredLeaves = ts.LastReclusteredLeaves
		ps.RepairedAncestors = ts.LastRepairedAncestors
		ps.BuffersAdded = ts.LastBuffersAdded
		ps.BuffersRemoved = ts.LastBuffersRemoved
		ps.CTSFallback = ts.LastFallbackReason
		if text {
			line := fmt.Sprintf("  cts %s: %d leaves re-clustered, %d ancestors repaired, %d clusters reused, buffers +%d/-%d",
				ts.LastKind, ts.LastReclusteredLeaves, ts.LastRepairedAncestors,
				ts.LastReusedClusters, ts.LastBuffersAdded, ts.LastBuffersRemoved)
			if ts.LastFallbackReason != "" {
				line += fmt.Sprintf(" (fallback: %s)", ts.LastFallbackReason)
			}
			fmt.Println(line)
			fmt.Printf("  cts phases: plan %.2f ms, repair %.2f ms, legalize %.2f ms\n",
				float64(ts.LastPlanNS)/1e6, float64(ts.LastRepairNS)/1e6,
				float64(ts.LastLegalizeNS)/1e6)
		}
		pm := ct.Metrics()
		ts = ct.Stats()
		ps.ClockBuffers = pm.Buffers
		ps.ClockCapPF = pm.TotalCapFF / 1000
		ps.ClockWLMM = float64(pm.WirelengthDBU) / 1e6
		if text {
			fmt.Printf("  clock network (cached): %d buffers, %.2f pF, %.2f mm (%d metric fallbacks)\n",
				pm.Buffers, pm.TotalCapFF/1000, float64(pm.WirelengthDBU)/1e6,
				ts.MetricsFallbacks)
		}
		overflow := rt.OverflowEdges()
		rs := rt.Stats()
		ps.RouteKind = rs.LastKind
		ps.OverflowEdges = overflow
		ps.NetsDelta = rs.LastNetsDelta
		ps.TilesTouched = rs.LastTilesTouched
		if text {
			rline := fmt.Sprintf("  route %s: %d overflow edges, %d nets re-contributed, %d grid edges touched",
				rs.LastKind, overflow, rs.LastNetsDelta, rs.LastTilesTouched)
			if rs.LastKind == "rebuild" && rs.LastFallback != "" {
				rline += fmt.Sprintf(" (fallback: %s)", rs.LastFallback)
			}
			fmt.Println(rline)
			fmt.Printf("  route phases: delta %.2f ms, rebuild %.2f ms\n",
				float64(rs.LastDeltaNS)/1e6, float64(rs.LastRebuildNS)/1e6)
		}
		out = append(out, ps)
		if len(cres.MBRs) == 0 {
			if text {
				fmt.Printf("  converged after %d passes (delta/rebuild decisions: %d/%d)\n",
					p, cg.Stats().Deltas, cg.Stats().Rebuilds)
			}
			break
		}
	}
	cs := cg.Stats()
	ts := ct.Stats()
	rs := rt.Stats()
	es := ce.Stats()
	if text && len(out) == passes {
		fmt.Printf("  totals: compat %d updates (%d delta, %d full); compose %d rounds (%d/%d subgraphs replayed, %d nodes saved); cts %d updates (%d delta, %d rebuilds, %d clean); route %d updates (%d delta, %d rebuilds, %d clean)\n",
			cs.Updates, cs.Deltas, cs.Rebuilds,
			es.Rounds, es.SubgraphsReused, es.SubgraphsSeen, es.ILPNodesSaved,
			ts.Updates, ts.Deltas, ts.Rebuilds, ts.Cleans,
			rs.Updates, rs.Deltas, rs.Rebuilds, rs.Cleans)
	}
	return out, wire.Engines(map[string]engine.Summary{
		"sta":     eng.Summary(),
		"compat":  cg.Summary(),
		"compose": ce.Summary(),
		"cts":     ct.Summary(),
		"route":   rt.Summary(),
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
