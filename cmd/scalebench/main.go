// Command scalebench sweeps the composition pipeline across benchmark
// profiles and scale divisors and records the cells-vs-time/memory curve the
// scale roadmap item asks for. Scale 20 is the historical benchmark size;
// Scale 1 is the paper's full size (0.87M–3.3M cells). For every
// (profile, scale) point it generates the design, runs STA, builds the
// compatibility graph and composes through the streamed pipeline, reporting
// per-phase wall times, the streaming high-water marks, and peak memory
// (sampled heap + process MaxRSS).
//
//	scalebench -profiles D1,D4 -scales 20,5,2,1 -out BENCH_scale.json
//	scalebench -profiles D1,D2,D3,D4,D5 -scales 5 -maxrss-mb 4096
//
// With -maxrss-mb the process exits non-zero when its final MaxRSS exceeds
// the bound — the CI scale-smoke memory-regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/sta"
)

// Row is one sweep point of the cells-vs-time/memory curve.
type Row struct {
	Profile string `json:"profile"`
	Scale   int    `json:"scale"`

	Cells int `json:"cells"`
	Regs  int `json:"regs"`
	Nets  int `json:"nets"`

	GenMS     float64 `json:"genMS"`
	STAMS     float64 `json:"staMS"`
	CompatMS  float64 `json:"compatMS"`
	ComposeMS float64 `json:"composeMS"`
	TotalMS   float64 `json:"totalMS"`

	MBRs           int     `json:"mbrs"`
	RegsAfter      int     `json:"regsAfter"`
	Subgraphs      int     `json:"subgraphs"`
	Candidates     int     `json:"candidates"`
	ObjectiveSum   float64 `json:"objectiveSum"`
	StreamedShards int     `json:"streamedShards"`
	PeakLiveShards int     `json:"peakLiveShards"`
	PeakLiveCands  int     `json:"peakLiveCands"`
	SchedShards    int     `json:"schedShards"`
	SchedSteals    int     `json:"schedSteals"`
	Workers        int     `json:"workers"`

	PeakHeapMB float64 `json:"peakHeapMB"`
	MaxRSSMB   float64 `json:"maxRSSMB"`
}

// Output is the BENCH_scale.json shape.
type Output struct {
	GoMaxProcs int    `json:"goMaxProcs"`
	Streaming  bool   `json:"streaming"`
	Rows       []Row  `json:"rows"`
	Note       string `json:"note,omitempty"`
}

func main() {
	var (
		profiles    = flag.String("profiles", "D1,D4", "comma-separated profiles to sweep (D1..D5)")
		scales      = flag.String("scales", "20,5,2,1", "comma-separated scale divisors, typically largest first")
		out         = flag.String("out", "", "write the sweep as JSON to this file (default stdout)")
		workers     = flag.Int("workers", 0, "composition worker count (0 = GOMAXPROCS)")
		noStreaming = flag.Bool("nostreaming", false, "materialize the decomposition instead of streaming (comparison runs)")
		maxRSSMB    = flag.Float64("maxrss-mb", 0, "exit 1 when the process MaxRSS exceeds this many MB (0 = no assertion)")
		note        = flag.String("note", "", "free-form note recorded in the output")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	scaleList, err := parseInts(*scales)
	if err != nil {
		fatal(fmt.Errorf("-scales: %w", err))
	}
	profileList := strings.Split(*profiles, ",")

	output := Output{GoMaxProcs: runtime.GOMAXPROCS(0), Streaming: !*noStreaming, Note: *note}
	for _, scale := range scaleList {
		for _, p := range profileList {
			row, err := runPoint(strings.TrimSpace(p), scale, *workers, *noStreaming)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr,
				"%s scale=%d: %d cells, %d regs -> %d, compose %.0f ms (total %.0f ms), peak heap %.0f MB, live %d/%d shards, %d/%d cands\n",
				row.Profile, row.Scale, row.Cells, row.Regs, row.RegsAfter,
				row.ComposeMS, row.TotalMS, row.PeakHeapMB,
				row.PeakLiveShards, row.StreamedShards, row.PeakLiveCands, row.Candidates)
			output.Rows = append(output.Rows, row)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(output); err != nil {
		fatal(err)
	}

	if rss := maxRSS(); *maxRSSMB > 0 && rss > *maxRSSMB {
		fmt.Fprintf(os.Stderr, "scalebench: MaxRSS %.0f MB exceeds the -maxrss-mb %.0f MB bound\n", rss, *maxRSSMB)
		os.Exit(1)
	}
}

// runPoint measures one (profile, scale) sweep point: generate, time, build
// the compatibility graph, compose. The heap sampler brackets only this
// point; a forced GC before it starts keeps the previous point's garbage
// out of the measurement.
func runPoint(profile string, scale, workers int, noStreaming bool) (Row, error) {
	spec, err := profileSpec(profile, scale)
	if err != nil {
		return Row{}, err
	}
	runtime.GC()
	sampler := startHeapSampler()
	defer sampler.stop()

	row := Row{Profile: profile, Scale: scale}
	start := time.Now()
	b, err := bench.Generate(spec)
	if err != nil {
		return Row{}, fmt.Errorf("%s scale=%d: generate: %w", profile, scale, err)
	}
	row.GenMS = ms(time.Since(start))
	d := b.Design
	row.Cells = d.NumInsts()
	row.Regs = len(d.Registers())
	row.Nets = d.NumNets()

	t := time.Now()
	eng := sta.New(d)
	eng.SetIdealClocks(true)
	sres, err := eng.Run()
	if err != nil {
		return Row{}, fmt.Errorf("%s scale=%d: sta: %w", profile, scale, err)
	}
	row.STAMS = ms(time.Since(t))

	t = time.Now()
	g := compat.Build(d, sres, b.Plan, compat.DefaultOptions())
	row.CompatMS = ms(time.Since(t))

	opts := core.DefaultOptions()
	opts.Workers = workers
	opts.DisableStreaming = noStreaming
	t = time.Now()
	cres, err := core.Compose(d, g, b.Plan, opts)
	if err != nil {
		return Row{}, fmt.Errorf("%s scale=%d: compose: %w", profile, scale, err)
	}
	row.ComposeMS = ms(time.Since(t))
	row.TotalMS = ms(time.Since(start))

	row.MBRs = len(cres.MBRs)
	row.RegsAfter = cres.RegsAfter
	row.Subgraphs = cres.Subgraphs
	row.Candidates = cres.Candidates
	row.ObjectiveSum = cres.ObjectiveSum
	row.StreamedShards = cres.StreamedShards
	row.PeakLiveShards = cres.PeakLiveShards
	row.PeakLiveCands = cres.PeakLiveCands
	row.SchedShards = cres.SchedShards
	row.SchedSteals = cres.SchedSteals
	row.Workers = cres.Workers
	row.PeakHeapMB = sampler.peakMB()
	row.MaxRSSMB = maxRSS()
	return row, nil
}

// heapSampler polls runtime.MemStats.HeapAlloc until stopped, keeping the
// high-water mark. 10 ms sampling is coarse against a multi-second sweep
// point but far finer than the phase durations it brackets.
type heapSampler struct {
	peak int64
	done chan struct{}
	fin  chan struct{}
}

func startHeapSampler() *heapSampler {
	s := &heapSampler{done: make(chan struct{}), fin: make(chan struct{})}
	go func() {
		defer close(s.fin)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		var m runtime.MemStats
		for {
			runtime.ReadMemStats(&m)
			if h := int64(m.HeapAlloc); h > atomic.LoadInt64(&s.peak) {
				atomic.StoreInt64(&s.peak, h)
			}
			select {
			case <-s.done:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

func (s *heapSampler) stop() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	<-s.fin
}

func (s *heapSampler) peakMB() float64 {
	s.stop()
	return float64(atomic.LoadInt64(&s.peak)) / (1 << 20)
}

// maxRSS reports the process's peak resident set in MB (Linux getrusage
// reports KB).
func maxRSS() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}

func profileSpec(name string, scale int) (bench.Spec, error) {
	o := bench.ProfileOpts{Scale: scale}
	switch name {
	case "D1":
		return bench.D1(o), nil
	case "D2":
		return bench.D2(o), nil
	case "D3":
		return bench.D3(o), nil
	case "D4":
		return bench.D4(o), nil
	case "D5":
		return bench.D5(o), nil
	}
	return bench.Spec{}, fmt.Errorf("unknown profile %q (want D1..D5)", name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("scale %d: must be >= 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
